#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.h"
#include "ftl/page_ftl.h"
#include "nand/geometry.h"

namespace insider::ftl {
namespace {

FtlConfig SmallConfig(bool delayed) {
  FtlConfig c;
  c.geometry = nand::TestGeometry();  // 2x2 chips, 16 blocks/chip, 8 pp/b
  c.latency = nand::LatencyModel::Zero();
  c.delayed_deletion = delayed;
  c.retention_window = Seconds(10);
  c.exported_fraction = 0.75;
  return c;
}

TEST(PageFtlTest, ExportedCapacityRespectsFraction) {
  PageFtl ftl(SmallConfig(true));
  EXPECT_EQ(ftl.ExportedLbas(),
            static_cast<Lba>(
                static_cast<double>(ftl.Config().geometry.TotalPages()) * 0.75));
}

TEST(PageFtlTest, WriteThenReadRoundTrip) {
  PageFtl ftl(SmallConfig(true));
  nand::PageData d;
  d.stamp = 1234;
  ASSERT_TRUE(ftl.WritePage(7, d, 0).ok());
  FtlResult r = ftl.ReadPage(7, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data.stamp, 1234u);
}

TEST(PageFtlTest, ReadOfUnmappedLbaFails) {
  PageFtl ftl(SmallConfig(true));
  EXPECT_EQ(ftl.ReadPage(3, 0).status, FtlStatus::kUnmapped);
}

TEST(PageFtlTest, OutOfRangeLbaRejected) {
  PageFtl ftl(SmallConfig(true));
  Lba beyond = ftl.ExportedLbas();
  EXPECT_EQ(ftl.WritePage(beyond, {}, 0).status, FtlStatus::kOutOfRange);
  EXPECT_EQ(ftl.ReadPage(beyond, 0).status, FtlStatus::kOutOfRange);
  EXPECT_EQ(ftl.TrimPage(beyond, 0).status, FtlStatus::kOutOfRange);
}

TEST(PageFtlTest, OverwriteRemapsAndRetainsOldVersion) {
  PageFtl ftl(SmallConfig(true));
  ftl.WritePage(5, {1, {}}, Seconds(1));
  nand::Ppa old_ppa = *ftl.Lookup(5);
  ftl.WritePage(5, {2, {}}, Seconds(2));
  nand::Ppa new_ppa = *ftl.Lookup(5);
  EXPECT_NE(old_ppa, new_ppa);
  EXPECT_EQ(ftl.StateOf(old_ppa), PageState::kRetained);
  EXPECT_EQ(ftl.StateOf(new_ppa), PageState::kValid);
  EXPECT_EQ(ftl.RecoveryQueueSize(), 1u);
  EXPECT_EQ(ftl.ReadPage(5, Seconds(2)).data.stamp, 2u);
}

TEST(PageFtlTest, ConventionalModeInvalidatesImmediately) {
  PageFtl ftl(SmallConfig(false));
  ftl.WritePage(5, {1, {}}, Seconds(1));
  nand::Ppa old_ppa = *ftl.Lookup(5);
  ftl.WritePage(5, {2, {}}, Seconds(2));
  EXPECT_EQ(ftl.StateOf(old_ppa), PageState::kInvalid);
  EXPECT_EQ(ftl.RecoveryQueueSize(), 0u);
}

TEST(PageFtlTest, RetainedPageReleasedAfterWindow) {
  PageFtl ftl(SmallConfig(true));
  ftl.WritePage(5, {1, {}}, Seconds(1));
  nand::Ppa old_ppa = *ftl.Lookup(5);
  ftl.WritePage(5, {2, {}}, Seconds(2));
  EXPECT_EQ(ftl.StateOf(old_ppa), PageState::kRetained);
  ftl.ReleaseExpired(Seconds(13));  // 2 + 10 < 13
  EXPECT_EQ(ftl.StateOf(old_ppa), PageState::kInvalid);
  EXPECT_EQ(ftl.RecoveryQueueSize(), 0u);
  EXPECT_EQ(ftl.Stats().retained_released, 1u);
}

TEST(PageFtlTest, TrimUnmapsButRetains) {
  PageFtl ftl(SmallConfig(true));
  ftl.WritePage(9, {1, {}}, Seconds(1));
  nand::Ppa old_ppa = *ftl.Lookup(9);
  ASSERT_TRUE(ftl.TrimPage(9, Seconds(2)).ok());
  EXPECT_FALSE(ftl.Lookup(9).has_value());
  EXPECT_EQ(ftl.StateOf(old_ppa), PageState::kRetained);
  EXPECT_EQ(ftl.ReadPage(9, Seconds(2)).status, FtlStatus::kUnmapped);
}

TEST(PageFtlTest, TrimOfUnmappedLbaFails) {
  PageFtl ftl(SmallConfig(true));
  EXPECT_EQ(ftl.TrimPage(4, 0).status, FtlStatus::kUnmapped);
}

TEST(PageFtlTest, ReadOnlyLatchesWritesAndTrims) {
  PageFtl ftl(SmallConfig(true));
  ftl.WritePage(1, {1, {}}, 0);
  ftl.SetReadOnly(true);
  EXPECT_EQ(ftl.WritePage(2, {}, 0).status, FtlStatus::kReadOnly);
  EXPECT_EQ(ftl.TrimPage(1, 0).status, FtlStatus::kReadOnly);
  EXPECT_TRUE(ftl.ReadPage(1, 0).ok());  // reads still served
}

TEST(PageFtlTest, RollbackRestoresOverwrittenData) {
  PageFtl ftl(SmallConfig(true));
  ftl.WritePage(5, {111, {}}, Seconds(1));
  // Attack at t=20: overwrite within the window before detection at t=22.
  ftl.WritePage(5, {666, {}}, Seconds(20));
  RollbackReport rep = ftl.RollBack(Seconds(22));
  EXPECT_TRUE(ftl.IsReadOnly());
  EXPECT_EQ(rep.entries_reverted, 1u);
  EXPECT_EQ(rep.mappings_restored, 1u);
  EXPECT_EQ(ftl.ReadPage(5, Seconds(22)).data.stamp, 111u);
}

TEST(PageFtlTest, RollbackRestoresTrimmedData) {
  PageFtl ftl(SmallConfig(true));
  ftl.WritePage(5, {111, {}}, Seconds(1));
  ftl.TrimPage(5, Seconds(20));
  ftl.RollBack(Seconds(21));
  EXPECT_EQ(ftl.ReadPage(5, Seconds(21)).data.stamp, 111u);
}

TEST(PageFtlTest, RollbackKeepsVersionsOlderThanWindow) {
  PageFtl ftl(SmallConfig(true));
  ftl.WritePage(5, {1, {}}, Seconds(1));
  ftl.WritePage(5, {2, {}}, Seconds(5));   // safe: older than t-10
  ftl.WritePage(5, {3, {}}, Seconds(20));  // attack write
  RollbackReport rep = ftl.RollBack(Seconds(21));
  EXPECT_EQ(rep.entries_reverted, 1u);
  EXPECT_EQ(ftl.ReadPage(5, Seconds(21)).data.stamp, 2u);
}

TEST(PageFtlTest, RollbackChainWithinWindowEndsAtPreWindowVersion) {
  PageFtl ftl(SmallConfig(true));
  ftl.WritePage(5, {10, {}}, Seconds(1));
  ftl.WritePage(5, {20, {}}, Seconds(20));
  ftl.WritePage(5, {30, {}}, Seconds(21));
  ftl.WritePage(5, {40, {}}, Seconds(22));
  RollbackReport rep = ftl.RollBack(Seconds(25));
  EXPECT_EQ(rep.entries_reverted, 3u);
  EXPECT_EQ(rep.mappings_restored, 1u);
  EXPECT_EQ(ftl.ReadPage(5, Seconds(25)).data.stamp, 10u);
}

TEST(PageFtlTest, RollbackDurationScalesWithEntries) {
  FtlConfig cfg = SmallConfig(true);
  cfg.rollback_entry_cost = Microseconds(2);
  PageFtl ftl(cfg);
  for (Lba lba = 0; lba < 8; ++lba) ftl.WritePage(lba, {1, {}}, Seconds(1));
  for (Lba lba = 0; lba < 8; ++lba) ftl.WritePage(lba, {2, {}}, Seconds(20));
  RollbackReport rep = ftl.RollBack(Seconds(21));
  EXPECT_EQ(rep.entries_reverted, 8u);
  EXPECT_EQ(rep.duration, Microseconds(16));
}

TEST(PageFtlTest, GcReclaimsInvalidPages) {
  PageFtl ftl(SmallConfig(false));
  // Hammer one LBA until GC must run; conventional mode reclaims instantly.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(ftl.WritePage(0, {static_cast<std::uint64_t>(i), {}}, 0).ok())
        << "write " << i;
  }
  EXPECT_GT(ftl.Stats().gc_erases, 0u);
  EXPECT_EQ(ftl.ReadPage(0, 0).data.stamp, 1999u);
}

TEST(PageFtlTest, GcPreservesAllValidData) {
  PageFtl ftl(SmallConfig(false));
  Lba n = ftl.ExportedLbas();
  // Fill the device, then rewrite everything twice to force GC churn.
  for (int round = 0; round < 3; ++round) {
    for (Lba lba = 0; lba < n; ++lba) {
      ASSERT_TRUE(
          ftl.WritePage(lba, {static_cast<Lba>(round) * 10000 + lba, {}}, 0)
              .ok());
    }
  }
  for (Lba lba = 0; lba < n; ++lba) {
    EXPECT_EQ(ftl.ReadPage(lba, 0).data.stamp, 20000 + lba);
  }
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

TEST(PageFtlTest, GcCopiesRetainedPagesInsteadOfReclaiming) {
  // Build a device state where GC victims hold a mix of invalid holes
  // (expired trims), live data, and *retained* pages guarding recent
  // overwrites — GC must relocate the retained pages, and the backups must
  // still be replayable afterwards.
  FtlConfig cfg = SmallConfig(true);
  cfg.exported_fraction = 0.5;  // 256 LBAs on 512 physical pages
  PageFtl ftl(cfg);
  Lba n = ftl.ExportedLbas();
  Rng rng(404);

  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, {lba, {}}, Seconds(1)).ok());
  }
  // Scattered deletes whose backups will have expired by t=15: they become
  // reclaimable holes inside the fill blocks.
  std::vector<Lba> all(n);
  std::iota(all.begin(), all.end(), 0);
  for (std::size_t i = all.size(); i > 1; --i) {
    std::swap(all[i - 1], all[rng.Below(i)]);
  }
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(ftl.TrimPage(all[i], Seconds(2)).ok());
  }
  // Protected overwrites at t=15 (trim backups expire on first release).
  std::vector<Lba> protected_lbas(all.begin() + 64, all.begin() + 128);
  for (Lba lba : protected_lbas) {
    ASSERT_TRUE(ftl.WritePage(lba, {7000 + lba, {}}, Seconds(15)).ok());
  }
  // Churn overwrites at t=15 push the device into GC.
  std::vector<Lba> churn(all.begin() + 128, all.begin() + 216);
  for (int round = 0; round < 2; ++round) {
    for (Lba lba : churn) {
      ASSERT_TRUE(ftl.WritePage(lba, {90000, {}}, Seconds(15)).ok());
    }
  }
  EXPECT_GT(ftl.Stats().gc_erases, 0u);
  EXPECT_GT(ftl.Stats().gc_retained_copies, 0u);
  EXPECT_EQ(ftl.Stats().forced_releases, 0u);
  EXPECT_EQ(ftl.CheckInvariants(), "");

  // Rollback to t=5: every overwrite from t=15 reverts, even where GC moved
  // the retained page.
  ftl.RollBack(Seconds(15));
  for (Lba lba : protected_lbas) {
    EXPECT_EQ(ftl.ReadPage(lba, Seconds(15)).data.stamp, lba);
  }
  for (Lba lba : churn) {
    EXPECT_EQ(ftl.ReadPage(lba, Seconds(15)).data.stamp, lba);
  }
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

TEST(PageFtlTest, DelayedDeletionCostsMoreGcCopies) {
  // Random scattered overwrites inside one retention window: conventional
  // GC reclaims the invalidated pages, SSD-Insider must carry the retained
  // versions, so it copies strictly more.
  std::uint64_t copies[2];
  for (bool delayed : {false, true}) {
    FtlConfig cfg = SmallConfig(delayed);
    cfg.exported_fraction = 0.5;
    PageFtl ftl(cfg);
    Lba n = ftl.ExportedLbas();
    Rng rng(777);
    for (Lba lba = 0; lba < n; ++lba) {
      ftl.WritePage(lba, {lba, {}}, Seconds(1));
    }
    for (int i = 0; i < 3 * static_cast<int>(n); ++i) {
      ASSERT_TRUE(
          ftl.WritePage(rng.Below(n), {0xBEEF, {}}, Seconds(2)).ok());
    }
    copies[delayed ? 1 : 0] = ftl.Stats().gc_page_copies;
    EXPECT_EQ(ftl.CheckInvariants(), "");
  }
  EXPECT_GT(copies[1], copies[0]);
}

TEST(PageFtlTest, SpacePressureForcesBackupRelease) {
  PageFtl ftl(SmallConfig(true));
  Lba n = ftl.ExportedLbas();
  for (Lba lba = 0; lba < n; ++lba) {
    ftl.WritePage(lba, {lba, {}}, Seconds(1));
  }
  // Overwrite everything repeatedly at the same instant: retention can never
  // expire, so the FTL must sacrifice old backups to keep accepting writes.
  for (int round = 0; round < 3; ++round) {
    for (Lba lba = 0; lba < n; ++lba) {
      ASSERT_TRUE(ftl.WritePage(lba, {lba, {}}, Seconds(2)).ok());
    }
  }
  EXPECT_GT(ftl.Stats().forced_releases, 0u);
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

TEST(PageFtlTest, QueueCapacityBoundsRetainedPages) {
  FtlConfig cfg = SmallConfig(true);
  cfg.recovery_queue_capacity = 4;
  PageFtl ftl(cfg);
  for (int i = 0; i < 10; ++i) {
    ftl.WritePage(3, {static_cast<std::uint64_t>(i), {}}, Seconds(1));
  }
  EXPECT_LE(ftl.RecoveryQueueSize(), 4u);
  EXPECT_EQ(ftl.Stats().queue_evictions, 5u);  // 9 overwrites, 4 kept
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

TEST(PageFtlTest, InvariantsHoldUnderRandomizedWorkload) {
  Rng rng(2024);
  PageFtl ftl(SmallConfig(true));
  Lba n = ftl.ExportedLbas();
  SimTime now = 0;
  for (int op = 0; op < 5000; ++op) {
    now += rng.BelowTime(50'000);
    Lba lba = rng.Below(n);
    double dice = rng.Uniform();
    if (dice < 0.55) {
      ftl.WritePage(lba, {static_cast<std::uint64_t>(op), {}}, now);
    } else if (dice < 0.85) {
      ftl.ReadPage(lba, now);
    } else {
      ftl.TrimPage(lba, now);
    }
    if (op % 500 == 0) {
      ASSERT_EQ(ftl.CheckInvariants(), "") << "after op " << op;
    }
  }
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

TEST(PageFtlTest, InvariantsHoldAfterRandomizedRollback) {
  Rng rng(77);
  PageFtl ftl(SmallConfig(true));
  Lba n = ftl.ExportedLbas();
  for (Lba lba = 0; lba < n / 2; ++lba) {
    ftl.WritePage(lba, {lba, {}}, Seconds(1));
  }
  // Attack burst sized to fit in flash alongside its backups (valid +
  // retained <= physical pages), so no backup is sacrificed and recovery
  // must be perfect.
  SimTime now = Seconds(20);
  for (int op = 0; op < 120; ++op) {
    now += rng.BelowTime(10'000);
    Lba lba = rng.Below(n / 2);
    if (rng.Chance(0.8)) {
      ASSERT_TRUE(ftl.WritePage(lba, {99999, {}}, now).ok());
    } else {
      ftl.TrimPage(lba, now);
    }
  }
  ASSERT_EQ(ftl.Stats().forced_releases, 0u);
  ftl.RollBack(now);
  EXPECT_EQ(ftl.CheckInvariants(), "");
  // Everything written at t=1 must read back intact.
  for (Lba lba = 0; lba < n / 2; ++lba) {
    FtlResult r = ftl.ReadPage(lba, now);
    ASSERT_TRUE(r.ok()) << "lba " << lba;
    EXPECT_EQ(r.data.stamp, lba);
  }
}

TEST(PageFtlTest, StatsCountHostOps) {
  PageFtl ftl(SmallConfig(true));
  ftl.WritePage(1, {}, 0);
  ftl.WritePage(1, {}, 0);
  ftl.ReadPage(1, 0);
  ftl.TrimPage(1, 0);
  EXPECT_EQ(ftl.Stats().host_writes, 2u);
  EXPECT_EQ(ftl.Stats().host_reads, 1u);
  EXPECT_EQ(ftl.Stats().host_trims, 1u);
}

}  // namespace
}  // namespace insider::ftl
