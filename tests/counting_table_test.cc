#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/counting_table.h"

namespace insider::core {
namespace {

TEST(CountingTableTest, StartsEmpty) {
  CountingTable t;
  EXPECT_EQ(t.EntryCount(), 0u);
  EXPECT_EQ(t.KeyCount(), 0u);
}

TEST(CountingTableTest, ReadCreatesEntry) {
  CountingTable t;
  t.OnRead(100, 1, 0);
  EXPECT_EQ(t.EntryCount(), 1u);
  EXPECT_EQ(t.KeyCount(), 1u);
  EXPECT_EQ(t.Counters().read_blocks, 1u);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(CountingTableTest, SequentialReadsExtendOneRun) {
  CountingTable t;
  for (Lba b = 100; b < 110; ++b) t.OnRead(b, 1, 0);
  EXPECT_EQ(t.EntryCount(), 1u);
  EXPECT_EQ(t.KeyCount(), 10u);
  t.ForEach([](const CountingEntry& e) {
    EXPECT_EQ(e.lba, 100u);
    EXPECT_EQ(e.rl, 10u);
    EXPECT_EQ(e.wl, 0u);
  });
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(CountingTableTest, MultiBlockRequestCoversRun) {
  CountingTable t;
  t.OnRead(50, 8, 0);
  EXPECT_EQ(t.EntryCount(), 1u);
  EXPECT_EQ(t.KeyCount(), 8u);
  EXPECT_EQ(t.Counters().read_blocks, 8u);
}

TEST(CountingTableTest, WriteToUntrackedBlockIsNotOverwrite) {
  CountingTable t;
  t.OnWrite(200, 4, 0);
  EXPECT_EQ(t.Counters().write_blocks, 4u);
  EXPECT_EQ(t.Counters().overwrites, 0u);
  EXPECT_EQ(t.EntryCount(), 0u);
}

TEST(CountingTableTest, WriteAfterReadCountsAsOverwrite) {
  CountingTable t;
  t.OnRead(10, 4, 0);
  t.OnWrite(10, 4, 0);
  EXPECT_EQ(t.Counters().overwrites, 4u);
  t.ForEach([](const CountingEntry& e) { EXPECT_EQ(e.wl, 4u); });
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(CountingTableTest, RepeatedWritesCountOncePerRead) {
  // The data-wiping discriminator: 7 passes over the same read block count
  // as ONE overwrite (paper: OWST stays low for wipers).
  CountingTable t;
  t.OnRead(10, 4, 0);
  for (int pass = 0; pass < 7; ++pass) t.OnWrite(10, 4, 0);
  EXPECT_EQ(t.Counters().overwrites, 4u);
  EXPECT_EQ(t.Counters().write_blocks, 28u);
}

TEST(CountingTableTest, ReReadReArmsOverwrite) {
  CountingTable t;
  t.OnRead(10, 1, 0);
  t.OnWrite(10, 1, 0);
  t.OnRead(10, 1, 0);  // ransomware reads it again
  t.OnWrite(10, 1, 0);
  EXPECT_EQ(t.Counters().overwrites, 2u);
}

TEST(CountingTableTest, SplitOnMidRunNonContiguousOverwrite) {
  CountingTable t;
  t.OnRead(100, 10, 0);  // run [100,110)
  t.OnWrite(100, 1, 0);  // ow run starts at head
  t.OnWrite(105, 1, 0);  // non-contiguous -> split
  EXPECT_EQ(t.EntryCount(), 2u);
  EXPECT_EQ(t.KeyCount(), 10u);
  std::vector<CountingEntry> entries;
  t.ForEach([&](const CountingEntry& e) { entries.push_back(e); });
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].lba, 100u);
  EXPECT_EQ(entries[0].rl, 5u);
  EXPECT_EQ(entries[0].wl, 1u);
  EXPECT_EQ(entries[1].lba, 105u);
  EXPECT_EQ(entries[1].rl, 5u);
  EXPECT_EQ(entries[1].wl, 1u);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(CountingTableTest, ContiguousOverwritesExtendWithoutSplit) {
  CountingTable t;
  t.OnRead(100, 8, 0);
  for (Lba b = 100; b < 108; ++b) t.OnWrite(b, 1, 0);
  EXPECT_EQ(t.EntryCount(), 1u);
  t.ForEach([](const CountingEntry& e) { EXPECT_EQ(e.wl, 8u); });
}

TEST(CountingTableTest, MergeJoinsAdjacentReadRuns) {
  CountingTable t;
  t.OnRead(100, 3, 0);  // [100,103)
  t.OnRead(104, 3, 0);  // [104,107)
  EXPECT_EQ(t.EntryCount(), 2u);
  t.OnRead(103, 1, 0);  // bridges the gap
  EXPECT_EQ(t.EntryCount(), 1u);
  t.ForEach([](const CountingEntry& e) {
    EXPECT_EQ(e.lba, 100u);
    EXPECT_EQ(e.rl, 7u);
  });
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(CountingTableTest, EndSliceResetsCounters) {
  CountingTable t;
  t.OnRead(1, 1, 0);
  t.OnWrite(1, 1, 0);
  SliceCounters c = t.EndSlice();
  EXPECT_EQ(c.read_blocks, 1u);
  EXPECT_EQ(c.write_blocks, 1u);
  EXPECT_EQ(c.overwrites, 1u);
  EXPECT_EQ(t.Counters().read_blocks, 0u);
  EXPECT_EQ(t.Counters().overwrites, 0u);
  // Entries persist across slices.
  EXPECT_EQ(t.EntryCount(), 1u);
}

TEST(CountingTableTest, DropOlderThanSlidesWindow) {
  CountingTable t;
  t.OnRead(100, 2, 0);
  t.OnRead(200, 2, 5);
  t.DropOlderThan(3);
  EXPECT_EQ(t.EntryCount(), 1u);
  EXPECT_EQ(t.KeyCount(), 2u);
  t.ForEach([](const CountingEntry& e) { EXPECT_EQ(e.lba, 200u); });
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(CountingTableTest, ActivityRefreshesEntryTime) {
  CountingTable t;
  t.OnRead(100, 2, 0);
  t.OnWrite(100, 1, 7);  // overwrite at slice 7 refreshes the entry
  t.DropOlderThan(5);
  EXPECT_EQ(t.EntryCount(), 1u);
}

TEST(CountingTableTest, AverageOverwriteRunLength) {
  CountingTable t;
  EXPECT_DOUBLE_EQ(t.AverageOverwriteRunLength(), 0.0);
  t.OnRead(100, 8, 0);
  t.OnRead(200, 8, 0);
  t.OnRead(300, 8, 0);
  // Runs with wl 4 and 2; the pure-read run at 300 is excluded.
  for (Lba b = 100; b < 104; ++b) t.OnWrite(b, 1, 0);
  for (Lba b = 200; b < 202; ++b) t.OnWrite(b, 1, 0);
  EXPECT_DOUBLE_EQ(t.AverageOverwriteRunLength(), 3.0);
}

TEST(CountingTableTest, EntryCapacityEvictsOldest) {
  CountingTable::Config cfg;
  cfg.max_entries = 4;
  CountingTable t(cfg);
  for (int i = 0; i < 8; ++i) {
    t.OnRead(static_cast<Lba>(i * 100), 1, i);
  }
  EXPECT_LE(t.EntryCount(), 4u);
  EXPECT_EQ(t.CheckInvariants(), "");
  // The survivors are the most recent reads.
  t.ForEach([](const CountingEntry& e) { EXPECT_GE(e.time, 4); });
}

TEST(CountingTableTest, HashCapacitySoftCap) {
  CountingTable::Config cfg;
  cfg.max_entries = 100;
  cfg.max_hash_keys = 64;
  CountingTable t(cfg);
  for (int run = 0; run < 8; ++run) {
    t.OnRead(static_cast<Lba>(run * 1000), 32, run);
  }
  // Eight 32-block runs = 256 keys; the cap keeps only the newest runs.
  EXPECT_LE(t.KeyCount(), 64u + 32u);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(CountingTableTest, InvariantsUnderRandomTraffic) {
  Rng rng(99);
  CountingTable::Config cfg;
  cfg.max_entries = 64;
  cfg.max_hash_keys = 2048;
  CountingTable t(cfg);
  SliceIndex slice = 0;
  for (int op = 0; op < 20000; ++op) {
    Lba lba = rng.Below(4096);
    std::uint32_t len = 1 + static_cast<std::uint32_t>(rng.Below(8));
    if (rng.Chance(0.5)) {
      t.OnRead(lba, len, slice);
    } else {
      t.OnWrite(lba, len, slice);
    }
    if (op % 200 == 0) {
      t.EndSlice();
      ++slice;
      t.DropOlderThan(slice - 10);
      ASSERT_EQ(t.CheckInvariants(), "") << "after op " << op;
    }
  }
}

TEST(CountingTableTest, PackedEntryMatchesPaperTableIII) {
  EXPECT_EQ(CountingEntry::PackedBytes(), 12u);
}

}  // namespace
}  // namespace insider::core
