// Seeded-corruption tests for the cross-layer invariant auditor.
//
// An auditor that only ever passes on healthy devices is untestable, so each
// test here uses the FtlStateTamperer backdoor to plant exactly one
// inconsistency from a known violation class and asserts the auditor reports
// that class: stale L2P mapping, dangling recovery-queue backup (both a
// rogue NAND erase and an out-of-window entry), per-block valid-count drift,
// and a bad-block table that disagrees with NAND reality.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "ftl/invariant_auditor.h"
#include "ftl/page_ftl.h"
#include "ftl/state_tamperer.h"
#include "nand/geometry.h"

namespace insider::ftl {
namespace {

using Kind = InvariantViolation::Kind;

FtlConfig SmallConfig() {
  FtlConfig c;
  c.geometry = nand::TestGeometry();  // 2x2 chips, 16 blocks/chip, 8 pp/b
  c.latency = nand::LatencyModel::Zero();
  c.delayed_deletion = true;
  c.retention_window = Seconds(10);
  c.exported_fraction = 0.75;
  return c;
}

/// Seeded mixed workload: writes, overwrites, and the occasional trim, with
/// enough churn to trigger foreground GC and queue releases.
SimTime Churn(PageFtl& ftl, std::uint64_t seed, int ops) {
  Rng rng(seed);
  SimTime now = Seconds(1);
  const Lba span = ftl.ExportedLbas() / 4;  // hot range forces overwrites
  for (int i = 0; i < ops; ++i) {
    Lba lba = rng.Below(span);
    if (rng.Below(10) == 0) {
      ftl.TrimPage(lba, now);
    } else {
      ftl.WritePage(lba, {static_cast<std::uint64_t>(i) + 1, {}}, now);
    }
    now += Milliseconds(3) + rng.BelowTime(Milliseconds(5));
  }
  return now;
}

TEST(InvariantAuditorTest, HealthyChurnAuditsClean) {
  PageFtl ftl(SmallConfig());
  Churn(ftl, 0xA5A5, 4000);
  AuditReport report = InvariantAuditor::Audit(ftl);
  EXPECT_TRUE(report.ok()) << report.Diff();
  EXPECT_GT(report.checks, 0u);
  EXPECT_FALSE(report.truncated);
  EXPECT_TRUE(report.Diff().empty());
}

TEST(InvariantAuditorTest, HealthyRollbackAndRebuildAuditClean) {
  PageFtl ftl(SmallConfig());
  SimTime now = Churn(ftl, 0xBEEF, 3000);

  ftl.SetReadOnly(true);
  ftl.RollBack(now);
  EXPECT_TRUE(InvariantAuditor::Audit(ftl).ok())
      << InvariantAuditor::Audit(ftl).Diff();

  ftl.SetReadOnly(false);
  (void)ftl.RebuildFromNand(now);
  AuditReport report = InvariantAuditor::Audit(ftl);
  EXPECT_TRUE(report.ok()) << report.Diff();
}

// Violation class 1 — stale L2P: the mapping table points somewhere the page
// states / reverse map / OOB tags do not corroborate.
TEST(InvariantAuditorTest, DetectsStaleL2pMapping) {
  PageFtl ftl(SmallConfig());
  ASSERT_TRUE(ftl.WritePage(5, {1, {}}, Seconds(1)).ok());
  ASSERT_TRUE(ftl.WritePage(6, {2, {}}, Seconds(1)).ok());
  ASSERT_TRUE(InvariantAuditor::Audit(ftl).ok());

  // Point LBA 5 at LBA 6's physical page: state says Valid but the reverse
  // map and the page's OOB tag both name LBA 6.
  FtlStateTamperer(ftl).RemapLba(5, *ftl.Lookup(6));

  AuditReport report = InvariantAuditor::Audit(ftl);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(Kind::kStaleMapping)) << report.Diff();
}

// Violation class 2a — dangling backup: a recovery-queue entry whose guarded
// physical page was erased behind the FTL's back. Rollback would "restore"
// vanished data.
TEST(InvariantAuditorTest, DetectsDanglingBackupAfterRogueErase) {
  PageFtl ftl(SmallConfig());
  ASSERT_TRUE(ftl.WritePage(5, {111, {}}, Seconds(1)).ok());
  nand::Ppa old_ppa = *ftl.Lookup(5);
  ASSERT_TRUE(ftl.WritePage(5, {222, {}}, Seconds(2)).ok());  // enqueues backup
  ASSERT_GT(ftl.RecoveryQueueSize(), 0u);
  ASSERT_TRUE(InvariantAuditor::Audit(ftl).ok());

  FtlStateTamperer(ftl).EraseNandBlockUnder(old_ppa);

  // The rogue erase can also strand sibling valid pages in the same block,
  // so allow a generous cap and look specifically for the queue violation.
  AuditReport report = InvariantAuditor::Audit(ftl, /*max_violations=*/256);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(Kind::kDanglingBackup)) << report.Diff();
}

// Violation class 2b — out-of-window backup: the queue front is older than
// the last release horizon, i.e. an entry that should have been released is
// still guarding a page.
TEST(InvariantAuditorTest, DetectsOutOfWindowBackup) {
  PageFtl ftl(SmallConfig());
  ASSERT_TRUE(ftl.WritePage(5, {111, {}}, Seconds(1)).ok());
  ASSERT_TRUE(ftl.WritePage(5, {222, {}}, Seconds(2)).ok());
  ASSERT_GT(ftl.RecoveryQueueSize(), 0u);
  ASSERT_TRUE(InvariantAuditor::Audit(ftl).ok());

  FtlStateTamperer(ftl).FastForwardReleaseHorizon(Seconds(100));

  AuditReport report = InvariantAuditor::Audit(ftl);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(Kind::kDanglingBackup)) << report.Diff();
}

// Violation class 3 — counter drift: a per-block occupancy counter disagrees
// with what the page states imply.
TEST(InvariantAuditorTest, DetectsValidCountDrift) {
  PageFtl ftl(SmallConfig());
  ASSERT_TRUE(ftl.WritePage(5, {1, {}}, Seconds(1)).ok());
  const nand::Geometry& geo = ftl.Config().geometry;
  nand::Ppa ppa = *ftl.Lookup(5);
  std::uint32_t block_id =
      geo.ChipOf(ppa) * geo.blocks_per_chip + geo.BlockOf(ppa);
  ASSERT_TRUE(InvariantAuditor::Audit(ftl).ok());

  FtlStateTamperer(ftl).BumpBlockValidCounter(block_id, +1);

  AuditReport report = InvariantAuditor::Audit(ftl);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(Kind::kCounterDrift)) << report.Diff();
}

// Violation class 4 — bad-block mismatch: the health table says Retired but
// NAND still holds the block's live data (no evacuation happened).
TEST(InvariantAuditorTest, DetectsBadBlockMismatch) {
  PageFtl ftl(SmallConfig());
  ASSERT_TRUE(ftl.WritePage(5, {1, {}}, Seconds(1)).ok());
  const nand::Geometry& geo = ftl.Config().geometry;
  nand::Ppa ppa = *ftl.Lookup(5);
  std::uint32_t block_id =
      geo.ChipOf(ppa) * geo.blocks_per_chip + geo.BlockOf(ppa);
  ASSERT_TRUE(InvariantAuditor::Audit(ftl).ok());

  FtlStateTamperer(ftl).MarkRetiredWithoutEvacuation(block_id);

  AuditReport report = InvariantAuditor::Audit(ftl, /*max_violations=*/64);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(Kind::kBadBlockMismatch)) << report.Diff();
}

// Versioning enabled (a protected range with archived history) must still
// audit clean — the V1–V4 store cross-checks pass on a healthy device.
TEST(InvariantAuditorTest, HealthyVersioningAuditsClean) {
  FtlConfig cfg = SmallConfig();
  auto table = std::make_shared<version::RangePolicyTable>();
  ASSERT_TRUE(table->Add({0, 32, 8, Seconds(300)}));
  cfg.range_policies = table;
  PageFtl ftl(cfg);
  SimTime now = Churn(ftl, 0xC0DE, 4000);
  ftl.ReleaseExpired(now + Seconds(30));  // age survivors into the store
  ASSERT_GT(ftl.ArchivedPageCount(), 0u);

  AuditReport report = InvariantAuditor::Audit(ftl);
  EXPECT_TRUE(report.ok()) << report.Diff();

  ftl.RollBackRange(0, 32, now - Seconds(5), now + Seconds(40));
  report = InvariantAuditor::Audit(ftl);
  EXPECT_TRUE(report.ok()) << report.Diff();
}

// Violation class 5 — version-store mismatch: a page flipped to Archived
// (counters kept consistent) that no store object accounts for.
TEST(InvariantAuditorTest, DetectsOrphanArchivedPage) {
  FtlConfig cfg = SmallConfig();
  auto table = std::make_shared<version::RangePolicyTable>();
  ASSERT_TRUE(table->Add({0, 32, 8, Seconds(300)}));
  cfg.range_policies = table;
  PageFtl ftl(cfg);
  // A released backup of an *unprotected* LBA leaves a programmed page the
  // FTL freed — the perfect orphan: flipping it to Archived creates a page
  // the version store cannot account for.
  ASSERT_TRUE(ftl.WritePage(40, {1, {}}, Seconds(1)).ok());
  nand::Ppa victim = *ftl.Lookup(40);
  ASSERT_TRUE(ftl.WritePage(40, {2, {}}, Seconds(2)).ok());
  ftl.ReleaseExpired(Seconds(20));
  ASSERT_EQ(ftl.StateOf(victim), PageState::kInvalid);
  ASSERT_TRUE(InvariantAuditor::Audit(ftl).ok());

  FtlStateTamperer(ftl).OrphanArchivedPage(victim);

  AuditReport report = InvariantAuditor::Audit(ftl, /*max_violations=*/64);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(Kind::kVersionStoreMismatch)) << report.Diff();
}

TEST(InvariantAuditorTest, DiffNamesKindLocationAndBothValues) {
  PageFtl ftl(SmallConfig());
  ASSERT_TRUE(ftl.WritePage(5, {1, {}}, Seconds(1)).ok());
  const nand::Geometry& geo = ftl.Config().geometry;
  nand::Ppa ppa = *ftl.Lookup(5);
  FtlStateTamperer(ftl).BumpBlockValidCounter(
      geo.ChipOf(ppa) * geo.blocks_per_chip + geo.BlockOf(ppa), +3);

  AuditReport report = InvariantAuditor::Audit(ftl);
  ASSERT_FALSE(report.ok());
  std::string diff = report.Diff();
  EXPECT_NE(diff.find("counter-drift"), std::string::npos) << diff;
  EXPECT_NE(diff.find("expected"), std::string::npos) << diff;
  EXPECT_NE(diff.find("actual"), std::string::npos) << diff;
}

TEST(InvariantAuditorTest, ReportRespectsViolationCap) {
  PageFtl ftl(SmallConfig());
  for (Lba lba = 0; lba < 16; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, {lba + 1, {}}, Seconds(1)).ok());
  }
  // Erase two whole blocks out from under the mapping: plenty of violations.
  FtlStateTamperer tamper(ftl);
  tamper.EraseNandBlockUnder(*ftl.Lookup(0));
  tamper.EraseNandBlockUnder(*ftl.Lookup(15));

  AuditReport report = InvariantAuditor::Audit(ftl, /*max_violations=*/2);
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_TRUE(report.truncated);
}

TEST(InvariantAuditorTest, CheckInvariantsDescribesFirstViolation) {
  PageFtl ftl(SmallConfig());
  ASSERT_TRUE(ftl.WritePage(5, {1, {}}, Seconds(1)).ok());
  EXPECT_EQ(ftl.CheckInvariants(), "");

  FtlStateTamperer(ftl).RemapLba(5, *ftl.Lookup(5) + 1);

  std::string msg = ftl.CheckInvariants();
  EXPECT_FALSE(msg.empty());
  EXPECT_NE(msg.find("expected"), std::string::npos) << msg;
}

// End-to-end proof of the INSIDER_AUDIT hook: in an audited build, the next
// mutating entry point after a planted corruption must abort with the
// structured diff on stderr. Skipped when the hooks are compiled out.
TEST(InvariantAuditorDeathTest, AuditedBuildAbortsWithStructuredDiff) {
  if (!PageFtl::AuditHooksEnabled()) {
    GTEST_SKIP() << "built without -DINSIDER_AUDIT=ON";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PageFtl ftl(SmallConfig());
  ASSERT_TRUE(ftl.WritePage(5, {1, {}}, Seconds(1)).ok());
  const nand::Geometry& geo = ftl.Config().geometry;
  nand::Ppa ppa = *ftl.Lookup(5);
  FtlStateTamperer(ftl).BumpBlockValidCounter(
      geo.ChipOf(ppa) * geo.blocks_per_chip + geo.BlockOf(ppa), +1);
  EXPECT_DEATH(ftl.WritePage(6, {2, {}}, Seconds(2)),
               "INSIDER_AUDIT failure.*counter-drift");
}

}  // namespace
}  // namespace insider::ftl
