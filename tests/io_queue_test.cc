#include <gtest/gtest.h>

#include <vector>

#include "io/arbiter.h"
#include "io/io_engine.h"
#include "io/ring_queue.h"

namespace insider::io {
namespace {

// Deterministic device: each request costs `cost` of virtual time per block,
// starting no earlier than its submit time. Records the dispatch order.
class FakeDevice final : public DeviceTarget {
 public:
  explicit FakeDevice(SimTime cost_per_block = Microseconds(100))
      : cost_(cost_per_block) {}

  SimTime Now() const override { return now_; }

  DispatchResult Dispatch(const IoRequest& request,
                          std::uint64_t stamp_base) override {
    (void)stamp_base;
    SimTime start = request.time > now_ ? request.time : now_;
    now_ = start + cost_ * request.length;
    order_.push_back(request);
    return {true, DeviceStatus::kOk, now_};
  }

  const std::vector<IoRequest>& Order() const { return order_; }

 private:
  SimTime cost_;
  SimTime now_ = 0;
  std::vector<IoRequest> order_;
};

TEST(RingQueueTest, PushPopWrapAround) {
  RingQueue<int> q(3);
  EXPECT_TRUE(q.Empty());
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_TRUE(q.Full());
  EXPECT_FALSE(q.TryPush(4));
  EXPECT_EQ(*q.Peek(), 1);
  EXPECT_EQ(q.TryPop(), 1);
  EXPECT_TRUE(q.TryPush(4));  // wraps
  EXPECT_EQ(q.TryPop(), 2);
  EXPECT_EQ(q.TryPop(), 3);
  EXPECT_EQ(q.TryPop(), 4);
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

TEST(ArbiterTest, RoundRobinRotates) {
  QueueArbiter arb({}, {1, 1, 1});
  std::vector<std::size_t> ready{0, 1, 2};
  EXPECT_EQ(arb.Pick(ready), 0u);
  EXPECT_EQ(arb.Pick(ready), 1u);
  EXPECT_EQ(arb.Pick(ready), 2u);
  EXPECT_EQ(arb.Pick(ready), 0u);
  // A vanished queue is skipped without disturbing rotation.
  EXPECT_EQ(arb.Pick({0, 2}), 2u);
  EXPECT_EQ(arb.Pick({0, 2}), 0u);
}

TEST(ArbiterTest, WeightedRoundRobinHonorsWeights) {
  ArbiterConfig cfg;
  cfg.policy = ArbiterPolicy::kWeightedRoundRobin;
  cfg.burst = 1;
  QueueArbiter arb(cfg, {2, 1});
  std::vector<std::size_t> ready{0, 1};
  // Queue 0 (weight 2) gets two consecutive grants per rotation.
  EXPECT_EQ(arb.Pick(ready), 0u);
  EXPECT_EQ(arb.Pick(ready), 0u);
  EXPECT_EQ(arb.Pick(ready), 1u);
  EXPECT_EQ(arb.Pick(ready), 0u);
  EXPECT_EQ(arb.Pick(ready), 0u);
  EXPECT_EQ(arb.Pick(ready), 1u);
}

EngineConfig TwoQueues(std::size_t depth) {
  EngineConfig cfg;
  cfg.queue_count = 2;
  cfg.queue.sq_depth = depth;
  return cfg;
}

TEST(IoEngineTest, QueueFullBackpressureBlocksUntilCompletion) {
  FakeDevice dev;
  EngineConfig cfg;
  cfg.queue_count = 1;
  cfg.queue.sq_depth = 2;
  IoEngine engine(dev, cfg);

  EXPECT_TRUE(engine.TrySubmit(0, {1000, 0, 1, IoMode::kWrite}));
  EXPECT_TRUE(engine.TrySubmit(0, {2000, 1, 1, IoMode::kWrite}));
  // Outstanding limit reached: the producer is blocked...
  EXPECT_FALSE(engine.TrySubmit(0, {3000, 2, 1, IoMode::kWrite}));
  EXPECT_EQ(engine.Stats().sq_rejections, 1u);

  // ...and dispatching alone does not help: an executing command still
  // occupies its slot until the host reaps the completion.
  ASSERT_TRUE(engine.Step());  // dispatch lba 0
  EXPECT_EQ(engine.InFlight(), 1u);
  EXPECT_FALSE(engine.TrySubmit(0, {3000, 2, 1, IoMode::kWrite}));

  ASSERT_TRUE(engine.Step());  // lba 0 completes, posts to the CQ
  ASSERT_TRUE(engine.PopCompletion(0).has_value());
  EXPECT_TRUE(engine.TrySubmit(0, {3000, 2, 1, IoMode::kWrite}));
  EXPECT_EQ(engine.Pair(0).stats().submitted, 3u);
  EXPECT_EQ(engine.Pair(0).stats().rejected, 2u);
}

TEST(IoEngineTest, DispatchesInVirtualTimeOrderAcrossQueues) {
  FakeDevice dev(Microseconds(1));  // device easily keeps up
  IoEngine engine(dev, TwoQueues(8));

  // Interleaved submit times across the two queues.
  (void)engine.TrySubmit(0, {1000, 10, 1, IoMode::kRead});
  (void)engine.TrySubmit(0, {5000, 11, 1, IoMode::kRead});
  (void)engine.TrySubmit(1, {2000, 20, 1, IoMode::kRead});
  (void)engine.TrySubmit(1, {9000, 21, 1, IoMode::kRead});
  EXPECT_EQ(engine.Drain(), 4u);

  ASSERT_EQ(dev.Order().size(), 4u);
  EXPECT_EQ(dev.Order()[0].lba, 10u);
  EXPECT_EQ(dev.Order()[1].lba, 20u);
  EXPECT_EQ(dev.Order()[2].lba, 11u);
  EXPECT_EQ(dev.Order()[3].lba, 21u);
}

TEST(IoEngineTest, RoundRobinIsFairWithinOneTick) {
  // All commands share one submit time, so every dispatch decision is an
  // arbitration decision. Fairness: after 3k dispatches each of the 3
  // queues must have exactly k, and at no prefix may the spread exceed 1.
  FakeDevice dev;
  EngineConfig cfg;
  cfg.queue_count = 3;
  cfg.queue.sq_depth = 8;
  IoEngine engine(dev, cfg);

  for (int i = 0; i < 6; ++i) {
    for (QueueId q = 0; q < 3; ++q) {
      ASSERT_TRUE(
          engine.TrySubmit(
              q, {1000, std::uint64_t{q} * 100 + static_cast<std::uint64_t>(i),
                  1, IoMode::kRead}));
    }
  }

  std::vector<std::uint64_t> granted(3, 0);
  for (int step = 0; step < 18; ++step) {
    ASSERT_TRUE(engine.Step());
    for (QueueId q = 0; q < 3; ++q) {
      granted[q] = engine.Pair(q).stats().dispatched;
    }
    std::uint64_t lo = std::min({granted[0], granted[1], granted[2]});
    std::uint64_t hi = std::max({granted[0], granted[1], granted[2]});
    EXPECT_LE(hi - lo, 1u) << "unfair at step " << step;
  }
  EXPECT_EQ(granted[0], 6u);
  EXPECT_EQ(granted[1], 6u);
  EXPECT_EQ(granted[2], 6u);
}

TEST(IoEngineTest, WeightedRoundRobinSkewsServiceByWeight) {
  FakeDevice dev;
  EngineConfig cfg;
  cfg.queue_count = 2;
  cfg.per_queue = {QueueConfig{8, 0, 3}, QueueConfig{8, 0, 1}};
  cfg.arbiter.policy = ArbiterPolicy::kWeightedRoundRobin;
  IoEngine engine(dev, cfg);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.TrySubmit(0, {1000, 0, 1, IoMode::kRead}));
    ASSERT_TRUE(engine.TrySubmit(1, {1000, 1, 1, IoMode::kRead}));
  }
  // First 8 dispatches: weight-3 queue gets 6, weight-1 queue gets 2.
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(engine.Step());
  EXPECT_EQ(engine.Pair(0).stats().dispatched, 6u);
  EXPECT_EQ(engine.Pair(1).stats().dispatched, 2u);
}

TEST(IoEngineTest, FullCompletionQueueStallsOnlyThatPair) {
  FakeDevice dev;
  EngineConfig cfg;
  cfg.queue_count = 2;
  cfg.per_queue = {QueueConfig{4, 1, 1}, QueueConfig{4, 4, 1}};
  IoEngine engine(dev, cfg);

  (void)engine.TrySubmit(0, {1000, 0, 1, IoMode::kRead});
  (void)engine.TrySubmit(0, {1000, 1, 1, IoMode::kRead});
  (void)engine.TrySubmit(1, {1000, 2, 1, IoMode::kRead});

  ASSERT_TRUE(engine.Step());  // dispatch queue 0: reserves its 1 CQ slot
  ASSERT_TRUE(engine.Step());  // queue 0 stalled -> queue 1 proceeds
  EXPECT_EQ(engine.Pair(0).stats().dispatched, 1u);
  EXPECT_EQ(engine.Pair(1).stats().dispatched, 1u);
  EXPECT_GT(engine.Stats().cq_stalls, 0u);

  ASSERT_TRUE(engine.Step());   // queue 0's completion posts
  ASSERT_TRUE(engine.Step());   // queue 1's completion posts
  EXPECT_FALSE(engine.Step());  // queue 0's second command: CQ still full
  EXPECT_EQ(engine.Pair(0).stats().dispatched, 1u);

  ASSERT_TRUE(engine.PopCompletion(0).has_value());
  ASSERT_TRUE(engine.Step());  // unblocked
  EXPECT_EQ(engine.Pair(0).stats().dispatched, 2u);
}

TEST(IoEngineTest, CompletionLatenciesAreMonotoneAndConsistent) {
  FakeDevice dev(Microseconds(250));
  EngineConfig cfg;
  cfg.queue_count = 1;
  cfg.queue.sq_depth = 16;
  IoEngine engine(dev, cfg);

  // Burst arriving faster than the device serves: queueing delay builds.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.TrySubmit(
        0, {1000 + i * 10, static_cast<Lba>(i), 1, IoMode::kWrite}));
  }
  engine.Drain();

  SimTime prev_complete = 0;
  while (std::optional<Completion> c = engine.PopCompletion(0)) {
    EXPECT_GE(c->complete_time, prev_complete);
    EXPECT_GE(c->dispatch_time, c->submit_time);
    EXPECT_GE(c->complete_time, c->dispatch_time);
    EXPECT_GE(c->Latency(), Microseconds(250));
    EXPECT_EQ(c->QueueDelay(), c->dispatch_time - c->submit_time);
    prev_complete = c->complete_time;
  }
}

}  // namespace
}  // namespace insider::io
