// End-to-end acceptance for ISSUE 7: a device with the paper's real geometry
// (Geometry::PaperScale(): 8 channels x 8 ways, 512 GB) boots, runs a
// detection + rollback scenario to completion, and never approaches a dense
// 512 GB worth of host memory thanks to the lazy NAND / LazyTable stack.
//
// Under -DINSIDER_AUDIT=ON the mutation-audit hooks sweep O(TotalPages)
// structures on every mutation, which is intentional at toy scale but takes
// unbounded time on 134M pages, so the heavy scenarios skip there.
#include <gtest/gtest.h>

#include "core/pretrained.h"
#include "ftl/page_ftl.h"
#include "host/ssd.h"

namespace insider::host {
namespace {

SsdConfig PaperScaleSsd() {
  SsdConfig c;
  c.ftl.geometry = nand::Geometry::PaperScale();
  c.ftl.latency = nand::LatencyModel::Zero();
  c.detector.slice_length = Seconds(1);
  c.detector.window_slices = 10;
  c.detector.score_threshold = 3;
  return c;
}

/// Tree voting ransomware iff OWIO > 30 (deterministic for tests).
core::DecisionTree SimpleTree() {
  std::vector<core::DecisionTree::Node> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = core::FeatureId::kOwIo;
  nodes[0].threshold = 30.0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].is_leaf = true;
  nodes[1].label = false;
  nodes[2].is_leaf = true;
  nodes[2].label = true;
  return core::DecisionTree(std::move(nodes));
}

TEST(PaperScaleTest, BootsWithinMemoryBudget) {
  Ssd ssd(PaperScaleSsd(), SimpleTree());
  EXPECT_EQ(ssd.Ftl().Nand().Geo().CapacityBytes(),
            512ull * 1024 * 1024 * 1024);
  // ISSUE 7 acceptance: an empty 512 GB device costs megabytes, not
  // gigabytes — the bound is 64 MiB.
  EXPECT_LT(ssd.Ftl().ResidentBytesEstimate(), 64ull << 20);
}

TEST(PaperScaleTest, WritesLandAcrossTheWholeAddressSpace) {
  Ssd ssd(PaperScaleSsd(), SimpleTree());
  const Lba far_lba = ssd.Ftl().ExportedLbas() - 1;  // ~120M LBAs in
  ASSERT_EQ(ssd.Submit({1000, far_lba, 1, IoMode::kWrite}, 77),
            ftl::FtlStatus::kOk);
  ftl::FtlResult r = ssd.Ftl().ReadPage(far_lba, 2000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data.stamp, 77u);
  // One write materializes one NAND block, nothing else.
  EXPECT_LT(ssd.Ftl().ResidentBytesEstimate(), 64ull << 20);
}

TEST(PaperScaleTest, DetectionAndRollbackRunEndToEnd) {
  if (ftl::PageFtl::AuditHooksEnabled()) {
    GTEST_SKIP() << "audit hooks sweep O(TotalPages); toy-scale tests cover "
                    "audited behaviour";
  }
  Ssd ssd(PaperScaleSsd(), SimpleTree());
  // Benign phase: 64 LBAs scattered far apart so writes cross chips.
  const Lba stride = 1 << 20;
  for (Lba i = 0; i < 64; ++i) {
    ASSERT_EQ(ssd.Submit({Seconds(1), i * stride, 1, IoMode::kWrite}, i),
              ftl::FtlStatus::kOk);
  }
  ssd.IdleUntil(Seconds(15));
  ASSERT_FALSE(ssd.AlarmActive());
  // Attack: read-then-overwrite the same 64 pages every second.
  for (int s = 0; s < 5 && !ssd.AlarmActive(); ++s) {
    SimTime t = Seconds(15 + s);
    for (Lba i = 0; i < 64; ++i) {
      (void)ssd.Submit({t, i * stride, 1, IoMode::kRead}, 0);
      (void)ssd.Submit({t + 1000, i * stride, 1, IoMode::kWrite}, 9999);
    }
  }
  ssd.IdleUntil(ssd.Clock().Now() + Seconds(1));
  ASSERT_TRUE(ssd.AlarmActive());
  EXPECT_TRUE(ssd.Ftl().IsReadOnly());
  ftl::RollbackReport rep = ssd.RollBackNow();
  EXPECT_GT(rep.entries_reverted, 0u);
  EXPECT_LT(rep.duration, Seconds(1));  // the paper's <1 s recovery
  for (Lba i = 0; i < 64; ++i) {
    ftl::FtlResult r = ssd.Ftl().ReadPage(i * stride, ssd.Clock().Now());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.data.stamp, i) << "lba " << i * stride << " not recovered";
  }
  // The whole scenario touched a few dozen blocks of a 512 GB device;
  // memory must still be nowhere near dense-map territory.
  EXPECT_LT(ssd.Ftl().ResidentBytesEstimate(), 64ull << 20);
}

}  // namespace
}  // namespace insider::host
