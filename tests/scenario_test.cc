// Scenario catalog and training-pipeline tests: Table I fidelity, scenario
// construction, and the labeling rules the ID3 tree's quality depends on.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "host/scenario.h"
#include "host/train.h"

namespace insider::host {
namespace {

TEST(TableITest, TrainTestFamiliesAreDisjoint) {
  // The paper's headline property: the accuracy evaluation uses ransomware
  // families never seen during training.
  std::set<std::string> train_families, test_families;
  for (const ScenarioSpec& s : TrainingScenarios()) {
    if (!s.ransomware.empty()) train_families.insert(s.ransomware);
  }
  for (const ScenarioSpec& s : TestingScenarios()) {
    if (!s.ransomware.empty()) test_families.insert(s.ransomware);
  }
  for (const std::string& f : test_families) {
    EXPECT_FALSE(train_families.contains(f)) << f << " leaked into training";
  }
}

TEST(TableITest, TrainingUsesOnlyKnownFamilies) {
  auto all = wl::AllRansomwareNames();
  std::set<std::string> known(all.begin(), all.end());
  for (const ScenarioSpec& s : TrainingScenarios()) {
    if (!s.ransomware.empty()) {
      EXPECT_TRUE(known.contains(s.ransomware)) << s.ransomware;
    }
  }
}

TEST(TableITest, TestingCoversAllFourBackgroundCategories) {
  std::set<wl::AppCategory> seen;
  for (const ScenarioSpec& s : TestingScenarios()) {
    seen.insert(wl::CategoryOf(s.app));
  }
  EXPECT_TRUE(seen.contains(wl::AppCategory::kHeavyOverwriting));
  EXPECT_TRUE(seen.contains(wl::AppCategory::kIoIntensive));
  EXPECT_TRUE(seen.contains(wl::AppCategory::kCpuIntensive));
  EXPECT_TRUE(seen.contains(wl::AppCategory::kNormal));
  EXPECT_TRUE(seen.contains(wl::AppCategory::kNone));  // ransom-only row
}

TEST(TableITest, RowCountsMatchThePaper) {
  EXPECT_EQ(TrainingScenarios().size(), 13u);
  EXPECT_EQ(TestingScenarios().size(), 12u);
}

TEST(BuildScenarioTest, DeterministicForSeed) {
  ScenarioConfig cfg;
  cfg.duration = Seconds(20);
  ScenarioSpec spec{wl::AppKind::kWebSurfing, "Mole", ""};
  BuiltScenario a = BuildScenario(spec, cfg, 42);
  BuiltScenario b = BuildScenario(spec, cfg, 42);
  ASSERT_EQ(a.merged.size(), b.merged.size());
  for (std::size_t i = 0; i < a.merged.size(); ++i) {
    EXPECT_EQ(a.merged[i].request, b.merged[i].request);
    EXPECT_EQ(a.merged[i].source, b.merged[i].source);
  }
}

TEST(BuildScenarioTest, DifferentSeedsDiffer) {
  ScenarioConfig cfg;
  cfg.duration = Seconds(20);
  ScenarioSpec spec{wl::AppKind::kWebSurfing, "Mole", ""};
  BuiltScenario a = BuildScenario(spec, cfg, 1);
  BuiltScenario b = BuildScenario(spec, cfg, 2);
  EXPECT_NE(a.merged.size(), b.merged.size());
}

TEST(BuildScenarioTest, MergedStreamIsTimeSorted) {
  ScenarioConfig cfg;
  cfg.duration = Seconds(20);
  BuiltScenario s =
      BuildScenario({wl::AppKind::kDatabase, "WannaCry", ""}, cfg, 9);
  SimTime prev = 0;
  for (const wl::TaggedRequest& t : s.merged) {
    EXPECT_GE(t.request.time, prev);
    prev = t.request.time;
  }
}

TEST(BuildScenarioTest, SourcesPartitionAppAndRansomware) {
  ScenarioConfig cfg;
  cfg.duration = Seconds(20);
  BuiltScenario s =
      BuildScenario({wl::AppKind::kDatabase, "WannaCry", ""}, cfg, 9);
  std::size_t app = 0, ransom = 0;
  for (const wl::TaggedRequest& t : s.merged) {
    if (t.source == 0) {
      ++app;
    } else if (t.source == 1) {
      ++ransom;
    } else {
      FAIL() << "unexpected source " << t.source;
    }
  }
  EXPECT_EQ(app, s.app.requests.size());
  EXPECT_EQ(ransom, s.ransom.requests.size());
}

TEST(BuildScenarioTest, RansomwareStartsAtConfiguredTime) {
  ScenarioConfig cfg;
  cfg.duration = Seconds(30);
  cfg.ransom_start = Seconds(11);
  BuiltScenario s =
      BuildScenario({wl::AppKind::kNone, "Mole", ""}, cfg, 3);
  EXPECT_GE(s.ransom.active_begin, Seconds(11));
  EXPECT_LT(s.ransom.active_begin, Seconds(13));
}

TEST(BuildScenarioTest, BenignScenarioHasNoRansomware) {
  ScenarioConfig cfg;
  cfg.duration = Seconds(10);
  BuiltScenario s = BuildScenario({wl::AppKind::kInstall, "", ""}, cfg, 3);
  EXPECT_FALSE(s.HasRansomware());
  for (const wl::TaggedRequest& t : s.merged) EXPECT_EQ(t.source, 0u);
}

TEST(BuildScenarioTest, RegionsDoNotCollide) {
  // Files in the first half, app in the next 3/8, scratch at the top: the
  // attack must never touch the app's region and vice versa.
  ScenarioConfig cfg;
  cfg.duration = Seconds(20);
  BuiltScenario s =
      BuildScenario({wl::AppKind::kDatabase, "WannaCry", ""}, cfg, 5);
  Lba files_end = cfg.lba_space / 2;
  Lba app_end = files_end + cfg.lba_space * 3 / 8;
  for (const wl::TaggedRequest& t : s.merged) {
    Lba last = t.request.lba + t.request.length;
    if (t.source == 0) {
      EXPECT_GE(t.request.lba, files_end);
      EXPECT_LE(last, app_end);
    } else {
      EXPECT_TRUE(last <= files_end || t.request.lba >= app_end)
          << "ransomware request in the app region";
    }
  }
}

TEST(BuildScenarioTest, CpuIntensiveBackgroundSlowsTheAttack) {
  ScenarioConfig cfg;
  cfg.duration = Seconds(60);
  cfg.ransom_max_duration = Seconds(45);
  BuiltScenario alone =
      BuildScenario({wl::AppKind::kNone, "Mole", ""}, cfg, 5);
  BuiltScenario contended =
      BuildScenario({wl::AppKind::kCompression, "Mole", ""}, cfg, 5);
  EXPECT_LT(alone.ransom.blocks_encrypted == 0
                ? 0.0
                : static_cast<double>(contended.ransom.blocks_encrypted),
            static_cast<double>(alone.ransom.blocks_encrypted));
}

// --- Training-pipeline labeling rules --------------------------------------

TEST(TrainLabelTest, BenignScenarioYieldsOnlyNegatives) {
  TrainConfig tc;
  tc.scenario.duration = Seconds(20);
  BuiltScenario s =
      BuildScenario({wl::AppKind::kDatabase, "", ""}, tc.scenario, 11);
  for (const core::Sample& smp :
       ExtractSamples(s, tc.detector, tc.label_min_ransom_writes)) {
    EXPECT_FALSE(smp.ransomware);
  }
}

TEST(TrainLabelTest, AttackScenarioYieldsPositives) {
  TrainConfig tc;
  tc.scenario.duration = Seconds(30);
  tc.scenario.ransom_start = Seconds(8);
  BuiltScenario s =
      BuildScenario({wl::AppKind::kNone, "Locky.bbs", ""}, tc.scenario, 11);
  std::size_t pos = 0;
  for (const core::Sample& smp :
       ExtractSamples(s, tc.detector, tc.label_min_ransom_writes)) {
    pos += smp.ransomware;
  }
  EXPECT_GT(pos, 3u);
}

TEST(TrainLabelTest, CooldownSlicesAreExcluded) {
  // Slices right after the attack ends have attack-contaminated window
  // features; labeling them benign would poison the tree. They must be
  // dropped, so the per-scenario sample count is strictly less than the
  // slice count.
  TrainConfig tc;
  tc.scenario.duration = Seconds(40);
  tc.scenario.ransom_start = Seconds(8);
  tc.scenario.ransom_max_duration = Seconds(10);  // attack ends mid-run
  BuiltScenario s =
      BuildScenario({wl::AppKind::kWebSurfing, "Locky.bbs", ""}, tc.scenario,
                    11);
  std::vector<core::Sample> samples =
      ExtractSamples(s, tc.detector, tc.label_min_ransom_writes);
  // Count total closed slices via a second extraction pass with threshold 0
  // being impossible; instead bound: the run spans ~40 slices, at least the
  // warmup + cooldown (window) slices must have been dropped.
  EXPECT_LT(samples.size(), 38u);
  // And the benign tail after cooldown is present as negatives.
  std::size_t negatives = 0;
  for (const core::Sample& smp : samples) negatives += !smp.ransomware;
  EXPECT_GT(negatives, 5u);
}

TEST(TrainLabelTest, TrainedTreeHasBoundedComplexity) {
  TrainConfig tc;
  tc.scenario.duration = Seconds(30);
  tc.seeds_per_scenario = 1;
  core::DecisionTree tree = TrainDefaultTree(tc);
  EXPECT_FALSE(tree.Empty());
  EXPECT_LE(tree.Depth(), tc.id3.max_depth + 1);
  EXPECT_LE(tree.NodeCount(), 127u);
}

}  // namespace
}  // namespace insider::host
