// Lazy-metadata mode and pointer-block cache tests: the parts of InsiderFS
// that make the Table II experiment faithful (crash-like on-disk states)
// without compromising normal-operation correctness.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "fs/file_system.h"
#include "fs/fsck.h"

namespace insider::fs {
namespace {

std::vector<std::byte> RandomBytes(Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.Below(256));
  return out;
}

class LazyFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(FileSystem::Mkfs(dev_, 64), FsStatus::kOk);
    auto fs = FileSystem::Mount(dev_);
    ASSERT_TRUE(fs.has_value());
    fs_.emplace(std::move(*fs));
  }

  MemBlockDevice dev_{8192};  // 32 MB
  std::optional<FileSystem> fs_;
};

TEST_F(LazyFsTest, InMemoryViewStaysCoherent) {
  fs_->SetLazyMetadata(true);
  Rng rng(1);
  auto data = RandomBytes(rng, 300 * 1024);
  ASSERT_EQ(fs_->CreateFile("/a"), FsStatus::kOk);
  ASSERT_EQ(fs_->WriteFile("/a", 0, data), FsStatus::kOk);
  // Reads through the same mount see everything, flushed or not.
  std::vector<std::byte> out(data.size());
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/a", 0, out, &n), FsStatus::kOk);
  EXPECT_EQ(out, data);
  EXPECT_EQ(fs_->FileSize("/a"), data.size());
}

TEST_F(LazyFsTest, CrashWithoutSyncLeavesRepairableInconsistency) {
  // With lazy write-back the disk passes through inconsistent states while
  // dirty metadata trickles out; a crash (device snapshot) lands on one of
  // them within a few operations.
  fs_->SetLazyMetadata(true);
  Rng rng(2);
  bool found_dirty = false;
  for (int i = 0; i < 12 && !found_dirty; ++i) {
    std::string path = "/f" + std::to_string(i);
    ASSERT_EQ(fs_->CreateFile(path), FsStatus::kOk);
    ASSERT_EQ(fs_->WriteFile(path, 0, RandomBytes(rng, 200 * 1024)),
              FsStatus::kOk);
    MemBlockDevice crashed = dev_;
    FsckReport before = Fsck(crashed, /*repair=*/false);
    if (!before.Clean()) {
      found_dirty = true;
      Fsck(crashed, /*repair=*/true);
      EXPECT_TRUE(Fsck(crashed, /*repair=*/false).Clean());
    }
  }
  EXPECT_TRUE(found_dirty)
      << "lazy write-back never left mixed-epoch metadata";
}

TEST_F(LazyFsTest, SyncMakesDiskConsistent) {
  fs_->SetLazyMetadata(true);
  Rng rng(3);
  for (int i = 0; i < 4; ++i) {
    std::string path = "/s" + std::to_string(i);
    ASSERT_EQ(fs_->CreateFile(path), FsStatus::kOk);
    ASSERT_EQ(fs_->WriteFile(path, 0, RandomBytes(rng, 150 * 1024)),
              FsStatus::kOk);
  }
  ASSERT_EQ(fs_->Sync(), FsStatus::kOk);
  MemBlockDevice snapshot = dev_;
  EXPECT_TRUE(Fsck(snapshot, /*repair=*/false).Clean());
}

TEST_F(LazyFsTest, WriteThroughModeIsAlwaysConsistent) {
  // The default policy: a snapshot after ANY completed operation is clean.
  Rng rng(4);
  for (int i = 0; i < 4; ++i) {
    std::string path = "/w" + std::to_string(i);
    ASSERT_EQ(fs_->CreateFile(path), FsStatus::kOk);
    ASSERT_EQ(fs_->WriteFile(path, 0, RandomBytes(rng, 120 * 1024)),
              FsStatus::kOk);
    MemBlockDevice snapshot = dev_;
    EXPECT_TRUE(Fsck(snapshot, /*repair=*/false).Clean()) << "after " << path;
  }
  ASSERT_EQ(fs_->Unlink("/w1"), FsStatus::kOk);
  MemBlockDevice snapshot = dev_;
  EXPECT_TRUE(Fsck(snapshot, /*repair=*/false).Clean());
}

TEST_F(LazyFsTest, DataSurvivesCrashRepairRemount) {
  fs_->SetLazyMetadata(true);
  Rng rng(5);
  auto settled = RandomBytes(rng, 250 * 1024);
  ASSERT_EQ(fs_->CreateFile("/settled"), FsStatus::kOk);
  ASSERT_EQ(fs_->WriteFile("/settled", 0, settled), FsStatus::kOk);
  ASSERT_EQ(fs_->Sync(), FsStatus::kOk);
  // More dirty activity after the sync...
  ASSERT_EQ(fs_->CreateFile("/in-flight"), FsStatus::kOk);
  ASSERT_EQ(fs_->WriteFile("/in-flight", 0, RandomBytes(rng, 250 * 1024)),
            FsStatus::kOk);
  // ...then crash, repair, remount: the synced file must be intact.
  MemBlockDevice crashed = dev_;
  Fsck(crashed, /*repair=*/true);
  ASSERT_TRUE(Fsck(crashed, /*repair=*/false).Clean());
  auto remounted = FileSystem::Mount(crashed);
  ASSERT_TRUE(remounted.has_value());
  std::vector<std::byte> out(settled.size());
  std::uint64_t n = 0;
  ASSERT_EQ(remounted->ReadFile("/settled", 0, out, &n), FsStatus::kOk);
  EXPECT_EQ(out, settled);
}

// --- Pointer-block cache ----------------------------------------------------

TEST_F(LazyFsTest, IndirectFilesSurviveFreeAndReallocate) {
  // The cache must not serve stale pointers after a file's pointer blocks
  // are freed and the physical blocks reused by another file.
  Rng rng(6);
  auto a1 = RandomBytes(rng, 300 * 1024);  // spans the indirect block
  ASSERT_EQ(fs_->CreateFile("/a"), FsStatus::kOk);
  ASSERT_EQ(fs_->WriteFile("/a", 0, a1), FsStatus::kOk);
  ASSERT_EQ(fs_->Unlink("/a"), FsStatus::kOk);
  auto b1 = RandomBytes(rng, 300 * 1024);
  ASSERT_EQ(fs_->CreateFile("/b"), FsStatus::kOk);
  ASSERT_EQ(fs_->WriteFile("/b", 0, b1), FsStatus::kOk);
  std::vector<std::byte> out(b1.size());
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/b", 0, out, &n), FsStatus::kOk);
  EXPECT_EQ(out, b1);
}

TEST_F(LazyFsTest, InterleavedWritesToManyFilesThrashTheCacheSafely) {
  Rng rng(7);
  constexpr std::size_t kFiles = 6;  // more files than cache slots
  std::vector<std::vector<std::byte>> contents(kFiles);
  for (std::size_t i = 0; i < kFiles; ++i) {
    ASSERT_EQ(fs_->CreateFile("/t" + std::to_string(i)), FsStatus::kOk);
  }
  // Round-robin appends so every file's indirect block keeps getting
  // evicted and re-read.
  for (int round = 0; round < 6; ++round) {
    for (std::size_t i = 0; i < kFiles; ++i) {
      auto chunk = RandomBytes(rng, 64 * 1024);
      ASSERT_EQ(fs_->WriteFile("/t" + std::to_string(i),
                               contents[i].size(), chunk),
                FsStatus::kOk);
      contents[i].insert(contents[i].end(), chunk.begin(), chunk.end());
    }
  }
  for (std::size_t i = 0; i < kFiles; ++i) {
    std::vector<std::byte> out(contents[i].size());
    std::uint64_t n = 0;
    ASSERT_EQ(fs_->ReadFile("/t" + std::to_string(i), 0, out, &n),
              FsStatus::kOk);
    EXPECT_EQ(out, contents[i]) << "file " << i;
  }
  MemBlockDevice snapshot = dev_;
  EXPECT_TRUE(Fsck(snapshot, /*repair=*/false).Clean());
}

TEST_F(LazyFsTest, AppendWorkloadIssuesFewDeviceReads) {
  // The whole point of the cache: appending must not read the indirect
  // block from the device for every allocated page. Counted via a wrapper.
  class CountingDevice final : public BlockDevice {
   public:
    explicit CountingDevice(BlockDevice& inner) : inner_(inner) {}
    std::uint64_t BlockCount() const override { return inner_.BlockCount(); }
    bool ReadBlock(std::uint64_t lba, std::span<std::byte> out) override {
      ++reads;
      return inner_.ReadBlock(lba, out);
    }
    bool WriteBlock(std::uint64_t lba,
                    std::span<const std::byte> data) override {
      return inner_.WriteBlock(lba, data);
    }
    bool TrimBlock(std::uint64_t lba) override {
      return inner_.TrimBlock(lba);
    }
    std::uint64_t reads = 0;

   private:
    BlockDevice& inner_;
  };

  MemBlockDevice raw(8192);
  ASSERT_EQ(FileSystem::Mkfs(raw, 64), FsStatus::kOk);
  CountingDevice counting(raw);
  auto fs = FileSystem::Mount(counting);
  ASSERT_TRUE(fs.has_value());
  ASSERT_EQ(fs->CreateFile("/big"), FsStatus::kOk);
  Rng rng(8);
  auto data = RandomBytes(rng, 1024 * 1024);  // 256 blocks, deep into indirect
  counting.reads = 0;
  ASSERT_EQ(fs->WriteFile("/big", 0, data), FsStatus::kOk);
  // Uncached RMW would need ~1 read per allocated page (~256+); with the
  // cache it's the inode block per interim store plus a handful of misses.
  EXPECT_LT(counting.reads, 40u);
}

}  // namespace
}  // namespace insider::fs
