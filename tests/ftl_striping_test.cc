// Tests of the FTL's multi-frontier striping, wear behavior, and the
// interaction of GC with the chip-parallel layout.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "ftl/page_ftl.h"
#include "nand/geometry.h"

namespace insider::ftl {
namespace {

FtlConfig StripedConfig(bool delayed = true) {
  FtlConfig c;
  c.geometry = nand::TestGeometry();  // 4 chips, 16 blocks/chip, 8 pp/b
  c.latency = nand::LatencyModel::Zero();
  c.delayed_deletion = delayed;
  c.exported_fraction = 0.75;
  return c;
}

TEST(StripingTest, ConsecutiveWritesRotateAcrossChips) {
  PageFtl ftl(StripedConfig());
  const nand::Geometry& geo = ftl.Config().geometry;
  std::vector<std::uint32_t> chips;
  for (Lba lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, {lba, {}}, 0).ok());
    chips.push_back(geo.ChipOf(*ftl.Lookup(lba)));
  }
  // Round-robin over 4 chips: positions i and i+4 share a chip, adjacent
  // positions don't.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chips[i], chips[i + 4]);
    EXPECT_NE(chips[i], chips[(i + 1) % 4]);
  }
}

TEST(StripingTest, AllChipsCarryData) {
  PageFtl ftl(StripedConfig());
  const nand::Geometry& geo = ftl.Config().geometry;
  for (Lba lba = 0; lba < 64; ++lba) {
    ftl.WritePage(lba, {lba, {}}, 0);
  }
  std::set<std::uint32_t> used_chips;
  for (Lba lba = 0; lba < 64; ++lba) {
    used_chips.insert(geo.ChipOf(*ftl.Lookup(lba)));
  }
  EXPECT_EQ(used_chips.size(), geo.TotalChips());
}

TEST(StripingTest, FreeBlockCountTracksPoolExactly) {
  PageFtl ftl(StripedConfig());
  const nand::Geometry& geo = ftl.Config().geometry;
  EXPECT_EQ(ftl.FreeBlockCount(), geo.TotalBlocks());
  // First 4 writes open one active block per chip.
  for (Lba lba = 0; lba < 4; ++lba) ftl.WritePage(lba, {0, {}}, 0);
  EXPECT_EQ(ftl.FreeBlockCount(), geo.TotalBlocks() - 4);
  // Filling those 4 blocks (8 pages each) doesn't consume more...
  for (Lba lba = 4; lba < 32; ++lba) ftl.WritePage(lba, {0, {}}, 0);
  EXPECT_EQ(ftl.FreeBlockCount(), geo.TotalBlocks() - 4);
  // ...until they're full and the next stripe opens 4 fresh ones.
  for (Lba lba = 32; lba < 36; ++lba) ftl.WritePage(lba, {0, {}}, 0);
  EXPECT_EQ(ftl.FreeBlockCount(), geo.TotalBlocks() - 8);
}

TEST(StripingTest, ParallelLatencyAcrossChips) {
  FtlConfig cfg = StripedConfig();
  cfg.latency = nand::LatencyModel{};  // real latencies
  PageFtl ftl(cfg);
  // Four writes submitted at t=0 go to four different chips on two
  // channels: they pairwise overlap, so the last completes well before
  // 4x a serial program time.
  SimTime last = 0;
  for (Lba lba = 0; lba < 4; ++lba) {
    FtlResult r = ftl.WritePage(lba, {lba, {}}, 0);
    ASSERT_TRUE(r.ok());
    last = std::max(last, r.complete_time);
  }
  SimTime serial = 4 * (cfg.latency.page_program + cfg.latency.channel_transfer);
  EXPECT_LT(last, serial / 2 + cfg.latency.page_program);
}

TEST(WearTest, StartsEven) {
  PageFtl ftl(StripedConfig());
  PageFtl::WearStats w = ftl.Wear();
  EXPECT_EQ(w.min_erases, 0u);
  EXPECT_EQ(w.max_erases, 0u);
}

TEST(WearTest, ChurnSpreadsErasesAcrossBlocks) {
  PageFtl ftl(StripedConfig(false));
  Lba n = ftl.ExportedLbas();
  // Sustained full-device rewrites force continuous GC.
  for (int round = 0; round < 30; ++round) {
    for (Lba lba = 0; lba < n; ++lba) {
      ASSERT_TRUE(ftl.WritePage(lba, {lba, {}}, 0).ok());
    }
  }
  PageFtl::WearStats w = ftl.Wear();
  EXPECT_GT(w.mean_erases, 5.0);  // real churn happened
  // With the least-worn tie-break, no block lags far behind or races far
  // ahead of the average.
  EXPECT_LE(w.max_erases, static_cast<std::uint64_t>(w.mean_erases * 3) + 3);
  EXPECT_GE(w.min_erases + 3,
            static_cast<std::uint64_t>(w.mean_erases / 3));
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

TEST(StripingTest, GcWorksWhenOneChipIsHot) {
  // Repeatedly overwriting a handful of LBAs concentrates traffic; GC must
  // still function and the data must survive.
  PageFtl ftl(StripedConfig(false));
  for (int i = 0; i < 4000; ++i) {
    Lba lba = static_cast<Lba>(i % 3);
    ASSERT_TRUE(
        ftl.WritePage(lba, {static_cast<std::uint64_t>(i), {}}, 0).ok());
  }
  EXPECT_EQ(ftl.ReadPage(0, 0).data.stamp, 3999u);
  EXPECT_EQ(ftl.ReadPage(1, 0).data.stamp, 3997u);
  EXPECT_EQ(ftl.ReadPage(2, 0).data.stamp, 3998u);
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

class StripingFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StripingFuzzTest, InvariantsAndDataSurviveChurn) {
  Rng rng(GetParam());
  PageFtl ftl(StripedConfig(true));
  Lba n = ftl.ExportedLbas();
  std::vector<std::int64_t> model(n, -1);  // expected stamp, -1 = unmapped
  SimTime now = 0;
  for (int op = 0; op < 3000; ++op) {
    now += rng.BelowTime(100'000);  // ~0-0.1 s steps: backups keep expiring
    Lba lba = rng.Below(n);
    double dice = rng.Uniform();
    if (dice < 0.6) {
      ASSERT_TRUE(
          ftl.WritePage(lba, {static_cast<std::uint64_t>(op), {}}, now).ok());
      model[lba] = op;
    } else if (dice < 0.8) {
      FtlResult r = ftl.ReadPage(lba, now);
      if (model[lba] < 0) {
        EXPECT_EQ(r.status, FtlStatus::kUnmapped);
      } else {
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r.data.stamp, static_cast<std::uint64_t>(model[lba]));
      }
    } else {
      FtlResult r = ftl.TrimPage(lba, now);
      EXPECT_EQ(r.ok(), model[lba] >= 0);
      model[lba] = -1;
    }
  }
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, StripingFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace insider::ftl
