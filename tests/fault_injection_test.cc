// Device-fault injection, bottom to top: scripted NAND program/erase/read
// faults (FaultPlan), FTL write re-drive and grown-bad-block retirement,
// graceful degradation to read-only when spares run out, deterministic
// probabilistic fault sampling, and the I/O engine's bounded read retry.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ftl/page_ftl.h"
#include "io/io_engine.h"
#include "nand/flash_array.h"
#include "nand/geometry.h"

namespace insider {
namespace {

nand::PageData Page(std::uint64_t stamp) {
  nand::PageData d;
  d.stamp = stamp;
  return d;
}

// ---------------------------------------------------------------------------
// NAND layer: FlashArray honors the scripted plan.

class NandFaultTest : public ::testing::Test {
 protected:
  nand::Geometry geo_ = nand::TestGeometry();
  nand::FlashArray nand_{geo_, nand::LatencyModel::Zero()};
};

TEST_F(NandFaultTest, ScriptedProgramFailBurnsThePage) {
  nand::FaultPlan plan;
  plan.FailProgramAtOp(1);
  nand_.SetFaultPlan(plan);

  nand::Ppa p0 = geo_.MakePpa(0, 0, 0);
  nand::NandResult w = nand_.ProgramPage(p0, Page(42), 0);
  EXPECT_EQ(w.status, nand::NandStatus::kProgramFail);
  EXPECT_TRUE(nand_.IsBadPage(p0));
  EXPECT_EQ(nand_.Counters().program_fails, 1u);
  EXPECT_EQ(nand_.Counters().page_programs, 0u);

  // The burned page consumed its block position: the write pointer advanced,
  // so the next sequential program lands on page 1 and succeeds.
  nand::Ppa p1 = geo_.MakePpa(0, 0, 1);
  EXPECT_TRUE(nand_.ProgramPage(p1, Page(43), 0).ok());

  // Reading the burned page fails as uncorrectable, never crashes.
  EXPECT_EQ(nand_.ReadPage(p0, 0).status, nand::NandStatus::kUncorrectableEcc);

  // An erase clears the defect marker and the page programs again.
  ASSERT_TRUE(nand_.EraseBlock({0, 0}, 0).ok());
  EXPECT_FALSE(nand_.IsBadPage(p0));
  EXPECT_TRUE(nand_.ProgramPage(p0, Page(44), 0).ok());
}

TEST_F(NandFaultTest, ScriptedEraseFailLeavesContentsUntouched) {
  nand::Ppa p0 = geo_.MakePpa(0, 0, 0);
  ASSERT_TRUE(nand_.ProgramPage(p0, Page(7), 0).ok());

  nand::FaultPlan plan;
  plan.FailEraseAtOp(1);
  nand_.SetFaultPlan(plan);

  nand::NandResult er = nand_.EraseBlock({0, 0}, 0);
  EXPECT_EQ(er.status, nand::NandStatus::kEraseFail);
  EXPECT_EQ(nand_.Counters().erase_fails, 1u);
  EXPECT_EQ(nand_.Counters().block_erases, 0u);

  // A failed erase must not lose the block's data.
  nand::NandResult r = nand_.ReadPage(p0, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data->stamp, 7u);

  // The plan event is consumed: the retry succeeds.
  EXPECT_TRUE(nand_.EraseBlock({0, 0}, 0).ok());
  EXPECT_EQ(nand_.Plan().Pending(), 0u);
}

TEST_F(NandFaultTest, ScriptedReadFaultIsUncorrectable) {
  nand::Ppa p0 = geo_.MakePpa(0, 0, 0);
  ASSERT_TRUE(nand_.ProgramPage(p0, Page(9), 0).ok());

  nand::FaultPlan plan;
  plan.FailReadAtOp(2);
  nand_.SetFaultPlan(plan);

  EXPECT_TRUE(nand_.ReadPage(p0, 0).ok());  // op 1: clean
  EXPECT_EQ(nand_.ReadPage(p0, 0).status,   // op 2: scripted fault
            nand::NandStatus::kUncorrectableEcc);
  EXPECT_TRUE(nand_.ReadPage(p0, 0).ok());  // op 3: clean again (transient)
  EXPECT_EQ(nand_.Counters().uncorrectable_reads, 1u);
}

TEST_F(NandFaultTest, TimeTriggeredFaultFiresOnFirstAttemptPastDeadline) {
  nand::FaultPlan plan;
  plan.FailProgramAt(Seconds(5));
  nand_.SetFaultPlan(plan);

  EXPECT_TRUE(nand_.ProgramPage(geo_.MakePpa(0, 0, 0), Page(1), Seconds(1)).ok());
  EXPECT_EQ(nand_.ProgramPage(geo_.MakePpa(0, 0, 1), Page(2), Seconds(6)).status,
            nand::NandStatus::kProgramFail);
  EXPECT_TRUE(nand_.ProgramPage(geo_.MakePpa(0, 0, 2), Page(3), Seconds(7)).ok());
  EXPECT_EQ(nand_.Plan().Pending(), 0u);
}

// ---------------------------------------------------------------------------
// FTL layer: re-drive, retirement, degradation.

ftl::FtlConfig FaultFtlConfig() {
  ftl::FtlConfig c;
  c.geometry = nand::TestGeometry();  // 2x2 chips, 16 blocks/chip, 8 pp/b
  c.latency = nand::LatencyModel::Zero();
  c.exported_fraction = 0.5;
  return c;
}

TEST(FtlFaultTest, ProgramFailIsRedrivenTransparently) {
  ftl::FtlConfig c = FaultFtlConfig();
  c.fault_plan.FailProgramAtOp(1);
  ftl::PageFtl ftl(c);

  // The host write succeeds despite the media failing its first attempt.
  ASSERT_TRUE(ftl.WritePage(7, Page(1234), Seconds(1)).ok());
  ftl::FtlResult r = ftl.ReadPage(7, Seconds(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data.stamp, 1234u);

  EXPECT_EQ(ftl.Stats().program_fails, 1u);
  EXPECT_EQ(ftl.Stats().write_redrives, 1u);
  EXPECT_EQ(ftl.Nand().Counters().program_fails, 1u);

  // The block that burned a page left the write frontier immediately; the
  // next write triggers its evacuation + retirement.
  ASSERT_TRUE(ftl.WritePage(8, Page(5678), Seconds(2)).ok());
  EXPECT_EQ(ftl.RetiredBlockCount(), 1u);
  EXPECT_EQ(ftl.Stats().blocks_retired, 1u);
  EXPECT_FALSE(ftl.IsDegraded());
  EXPECT_EQ(ftl.CheckInvariants(), "");

  // Both LBAs still read back.
  EXPECT_EQ(ftl.ReadPage(7, Seconds(3)).data.stamp, 1234u);
  EXPECT_EQ(ftl.ReadPage(8, Seconds(3)).data.stamp, 5678u);
}

TEST(FtlFaultTest, RetiredBlockEvacuationPreservesLiveData) {
  ftl::FtlConfig c = FaultFtlConfig();
  // Fail the 10th program: by then several LBAs live in the victim block,
  // so retirement must relocate them.
  c.fault_plan.FailProgramAtOp(10);
  ftl::PageFtl ftl(c);

  SimTime t = Seconds(1);
  for (Lba lba = 0; lba < 24; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(100 + lba), t).ok()) << lba;
    t += Milliseconds(10);
  }
  EXPECT_EQ(ftl.Stats().program_fails, 1u);
  EXPECT_GE(ftl.RetiredBlockCount(), 1u);
  EXPECT_EQ(ftl.CheckInvariants(), "");
  for (Lba lba = 0; lba < 24; ++lba) {
    ftl::FtlResult r = ftl.ReadPage(lba, t);
    ASSERT_TRUE(r.ok()) << lba;
    EXPECT_EQ(r.data.stamp, 100 + lba) << lba;
  }
}

TEST(FtlFaultTest, EraseFailDuringGcRetiresTheBlock) {
  ftl::FtlConfig c = FaultFtlConfig();
  c.delayed_deletion = false;  // plain overwrites invalidate immediately
  c.fault_plan.FailEraseAtOp(1);
  ftl::PageFtl ftl(c);

  // Fill the exported space, then overwrite it repeatedly to force GC.
  SimTime t = Seconds(1);
  Lba lbas = ftl.ExportedLbas();
  for (int pass = 0; pass < 4; ++pass) {
    for (Lba lba = 0; lba < lbas; ++lba) {
      ASSERT_TRUE(
          ftl.WritePage(lba, Page(static_cast<Lba>(pass) * 1000 + lba), t)
              .ok());
      t += Milliseconds(1);
    }
  }
  ASSERT_GT(ftl.Stats().gc_invocations, 0u);
  EXPECT_EQ(ftl.Stats().erase_fails, 1u);
  EXPECT_GE(ftl.RetiredBlockCount(), 1u);
  EXPECT_GE(ftl.Stats().blocks_retired, 1u);
  EXPECT_EQ(ftl.CheckInvariants(), "");

  // Every LBA still maps its final version.
  for (Lba lba = 0; lba < lbas; ++lba) {
    ftl::FtlResult r = ftl.ReadPage(lba, t);
    ASSERT_TRUE(r.ok()) << lba;
    EXPECT_EQ(r.data.stamp, 3000 + lba) << lba;
  }
}

TEST(FtlFaultTest, SpareExhaustionDegradesToReadOnlyWithoutAborting) {
  ftl::FtlConfig c;
  c.geometry.channels = 1;
  c.geometry.ways = 1;
  c.geometry.blocks_per_chip = 4;
  c.geometry.pages_per_block = 4;
  c.latency = nand::LatencyModel::Zero();
  c.exported_fraction = 0.25;  // 4 LBAs
  c.gc_reserve_blocks = 1;
  c.gc_low_watermark_blocks = 0;  // keep background GC out of the picture
  c.gc_high_watermark_blocks = 0;
  // Every program attempt from t = 10 s on fails (far more events than the
  // device has pages), so block retirement eats the whole spare pool.
  for (int i = 0; i < 64; ++i) c.fault_plan.FailProgramAt(Seconds(10));
  ftl::PageFtl ftl(c);

  // Healthy phase: fill the exported LBAs.
  for (Lba lba = 0; lba < 4; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(lba), Seconds(1)).ok());
  }

  // Fault storm: the write burns through every candidate frontier and the
  // device degrades instead of asserting.
  ftl::FtlResult w = ftl.WritePage(0, Page(99), Seconds(11));
  EXPECT_EQ(w.status, ftl::FtlStatus::kNoSpace);
  EXPECT_TRUE(ftl.IsDegraded());
  EXPECT_TRUE(ftl.IsReadOnly());
  EXPECT_GT(ftl.Stats().program_fails, 0u);

  // Reads of everything written before the storm still complete.
  for (Lba lba = 0; lba < 4; ++lba) {
    ftl::FtlResult r = ftl.ReadPage(lba, Seconds(12));
    ASSERT_TRUE(r.ok()) << lba;
    EXPECT_EQ(r.data.stamp, lba) << lba;
  }
  // Further writes are refused with a status, not an abort.
  EXPECT_EQ(ftl.WritePage(1, Page(100), Seconds(13)).status,
            ftl::FtlStatus::kReadOnly);
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

// ---------------------------------------------------------------------------
// Determinism: the probabilistic fault model is a pure function of the seed.

ftl::FtlStats RunSeededFaultWorkload(std::uint64_t seed,
                                     nand::NandCounters* nand_out) {
  ftl::FtlConfig c = FaultFtlConfig();
  c.errors.program_fail_prob = 0.02;
  c.errors.erase_fail_prob = 0.01;
  c.error_seed = seed;
  ftl::PageFtl ftl(c);

  Rng rng(seed * 31 + 1);
  SimTime t = 0;
  Lba lbas = ftl.ExportedLbas();
  for (int op = 0; op < 1500; ++op) {
    t += rng.BelowTime(5'000);
    Lba lba = rng.Below(lbas);
    if (rng.Below(100) < 80) {
      ftl.WritePage(lba, Page(static_cast<std::uint64_t>(op)), t);
    } else {
      ftl.TrimPage(lba, t);
    }
  }
  ftl.ReleaseExpired(t + Seconds(30));
  EXPECT_EQ(ftl.CheckInvariants(), "");
  if (nand_out != nullptr) *nand_out = ftl.Nand().Counters();
  return ftl.Stats();
}

TEST(FtlFaultTest, SameSeedSameFaultsSameStats) {
  nand::NandCounters nand_a, nand_b;
  ftl::FtlStats a = RunSeededFaultWorkload(77, &nand_a);
  ftl::FtlStats b = RunSeededFaultWorkload(77, &nand_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(nand_a, nand_b);
  // The workload actually exercised the fault paths.
  EXPECT_GT(a.program_fails + a.erase_fails, 0u);
  EXPECT_EQ(a.program_fails, a.write_redrives);

  // A different seed draws a different fault pattern (overwhelmingly likely
  // over ~1500 ops at these rates).
  ftl::FtlStats other = RunSeededFaultWorkload(78, nullptr);
  EXPECT_NE(a, other);
}

TEST(FtlFaultTest, DisabledFaultModelDrawsNoRandomness) {
  // With fault probabilities at 0 the write path must not consume RNG state:
  // enabling read-path ECC later must see the same stream as the seed run.
  ftl::FtlConfig c = FaultFtlConfig();
  ftl::PageFtl ftl(c);
  for (Lba lba = 0; lba < 32; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(lba), Seconds(1)).ok());
  }
  EXPECT_EQ(ftl.Stats().program_fails, 0u);
  EXPECT_EQ(ftl.Stats().write_redrives, 0u);
  EXPECT_EQ(ftl.RetiredBlockCount(), 0u);
}

// ---------------------------------------------------------------------------
// I/O engine: status propagation and bounded read retry.

// Scripted device: fails the first `fail_count` dispatches of an LBA with
// kReadError, then succeeds. Counts Redrive calls separately so the test can
// tell retries from fresh traffic.
class FlakyReadDevice final : public io::DeviceTarget {
 public:
  explicit FlakyReadDevice(int fail_count) : fails_left_(fail_count) {}

  SimTime Now() const override { return now_; }

  io::DispatchResult Dispatch(const IoRequest& request,
                              std::uint64_t) override {
    ++dispatches_;
    return Execute(request);
  }

  io::DispatchResult Redrive(const IoRequest& request,
                             std::uint64_t) override {
    ++redrives_;
    return Execute(request);
  }

  int dispatches() const { return dispatches_; }
  int redrives() const { return redrives_; }

 private:
  io::DispatchResult Execute(const IoRequest& request) {
    SimTime start = request.time > now_ ? request.time : now_;
    now_ = start + Microseconds(50);
    if (request.mode == IoMode::kRead && fails_left_ > 0) {
      --fails_left_;
      return {false, io::DeviceStatus::kReadError, now_};
    }
    return {true, io::DeviceStatus::kOk, now_};
  }

  int fails_left_;
  int dispatches_ = 0;
  int redrives_ = 0;
  SimTime now_ = 0;
};

TEST(IoEngineFaultTest, TransientReadErrorRetriedTransparently) {
  FlakyReadDevice dev(1);  // first read fails once
  io::EngineConfig cfg;
  cfg.max_read_retries = 2;
  io::IoEngine engine(dev, cfg);

  ASSERT_TRUE(engine.TrySubmit(0, {1000, 5, 1, IoMode::kRead}));
  engine.Drain();

  std::optional<io::Completion> c = engine.PopCompletion(0);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->ok);
  EXPECT_EQ(c->status, io::DeviceStatus::kOk);
  EXPECT_EQ(c->retries, 1u);
  EXPECT_EQ(engine.Stats().read_retries, 1u);
  EXPECT_EQ(engine.Stats().completed_ok, 1u);
  EXPECT_EQ(engine.Stats().completed_error, 0u);
  EXPECT_EQ(dev.dispatches(), 1);
  EXPECT_EQ(dev.redrives(), 1);  // the retry went through Redrive, not Dispatch
}

TEST(IoEngineFaultTest, PersistentReadErrorPostsAfterBoundedRetries) {
  FlakyReadDevice dev(100);  // never recovers
  io::EngineConfig cfg;
  cfg.max_read_retries = 2;
  io::IoEngine engine(dev, cfg);

  ASSERT_TRUE(engine.TrySubmit(0, {1000, 5, 1, IoMode::kRead}));
  engine.Drain();

  std::optional<io::Completion> c = engine.PopCompletion(0);
  ASSERT_TRUE(c.has_value());
  EXPECT_FALSE(c->ok);
  EXPECT_EQ(c->status, io::DeviceStatus::kReadError);
  EXPECT_EQ(c->retries, 2u);
  EXPECT_EQ(engine.Stats().read_retries, 2u);
  EXPECT_EQ(engine.Stats().completed_error, 1u);
  EXPECT_EQ(dev.redrives(), 2);
}

TEST(IoEngineFaultTest, WriteErrorsAreNeverRetried) {
  class WriteFailDevice final : public io::DeviceTarget {
   public:
    SimTime Now() const override { return now_; }
    io::DispatchResult Dispatch(const IoRequest& request,
                                std::uint64_t) override {
      now_ = (request.time > now_ ? request.time : now_) + Microseconds(50);
      ++calls_;
      return {false, io::DeviceStatus::kNoSpace, now_};
    }
    int calls_ = 0;
    SimTime now_ = 0;
  } write_dev;

  io::EngineConfig cfg;
  cfg.max_read_retries = 2;
  io::IoEngine engine(write_dev, cfg);
  ASSERT_TRUE(engine.TrySubmit(0, {1000, 5, 1, IoMode::kWrite}));
  engine.Drain();

  std::optional<io::Completion> c = engine.PopCompletion(0);
  ASSERT_TRUE(c.has_value());
  EXPECT_FALSE(c->ok);
  EXPECT_EQ(c->status, io::DeviceStatus::kNoSpace);
  EXPECT_EQ(c->retries, 0u);
  EXPECT_EQ(write_dev.calls_, 1);
  EXPECT_EQ(engine.Stats().read_retries, 0u);
}

}  // namespace
}  // namespace insider
