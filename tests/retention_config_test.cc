// Typed validation of the retention configuration (MakeRetentionPolicy /
// ValidateRetentionConfig) and of the per-range policy table: a config that
// would silently retain nothing must be rejected with a diagnosable error,
// and a device handed such a config must fall back to the paper's window
// policy instead of running unprotected.
#include <gtest/gtest.h>

#include <memory>

#include "ftl/page_ftl.h"
#include "ftl/policy.h"
#include "nand/geometry.h"
#include "version/range_policy.h"

namespace insider::ftl {
namespace {

FtlConfig BaseConfig() {
  FtlConfig cfg;
  cfg.geometry = nand::TestGeometry();
  cfg.latency = nand::LatencyModel::Zero();
  return cfg;
}

TEST(RetentionConfigTest, DefaultConfigIsValid) {
  RetentionConfigError e = ValidateRetentionConfig(BaseConfig());
  EXPECT_TRUE(e.ok());
  EXPECT_EQ(e.issue, RetentionConfigIssue::kNone);
  EXPECT_NE(MakeRetentionPolicy(BaseConfig()), nullptr);
}

TEST(RetentionConfigTest, NegativeWindowRejected) {
  FtlConfig cfg = BaseConfig();
  cfg.retention_window = -Seconds(1);
  RetentionConfigError e;
  EXPECT_EQ(MakeRetentionPolicy(cfg, &e), nullptr);
  EXPECT_EQ(e.issue, RetentionConfigIssue::kNegativeWindow);
  EXPECT_FALSE(e.detail.empty());
}

TEST(RetentionConfigTest, ZeroWindowWithDelayedDeletionIsNoOp) {
  FtlConfig cfg = BaseConfig();
  cfg.retention_window = 0;
  RetentionConfigError e;
  EXPECT_EQ(MakeRetentionPolicy(cfg, &e), nullptr);
  EXPECT_EQ(e.issue, RetentionConfigIssue::kNoOpRetention);
}

TEST(RetentionConfigTest, ZeroWindowAllowedInConventionalMode) {
  FtlConfig cfg = BaseConfig();
  cfg.delayed_deletion = false;
  cfg.retention_window = 0;
  EXPECT_TRUE(ValidateRetentionConfig(cfg).ok());
}

TEST(RetentionConfigTest, RangePoliciesRequireDelayedDeletion) {
  FtlConfig cfg = BaseConfig();
  cfg.delayed_deletion = false;
  auto table = std::make_shared<version::RangePolicyTable>();
  ASSERT_TRUE(table->Add({0, 64, 4, Seconds(60)}));
  cfg.range_policies = table;
  RetentionConfigError e;
  EXPECT_EQ(MakeRetentionPolicy(cfg, &e), nullptr);
  EXPECT_EQ(e.issue, RetentionConfigIssue::kInvalidRangePolicy);
}

TEST(RetentionConfigTest, EmptyRangeTableIsValid) {
  FtlConfig cfg = BaseConfig();
  cfg.range_policies = std::make_shared<version::RangePolicyTable>();
  EXPECT_TRUE(ValidateRetentionConfig(cfg).ok());
}

TEST(RetentionConfigTest, IssueNamesAreStable) {
  EXPECT_STREQ(ToString(RetentionConfigIssue::kNone), "none");
  EXPECT_STREQ(ToString(RetentionConfigIssue::kNegativeWindow),
               "negative-window");
  EXPECT_STREQ(ToString(RetentionConfigIssue::kNoOpRetention),
               "no-op-retention");
  EXPECT_STREQ(ToString(RetentionConfigIssue::kInvalidRangePolicy),
               "invalid-range-policy");
}

// A device built from a rejected config must not come up half-protected: it
// records the error, falls back to the paper window, and keeps serving I/O
// with the version store disabled.
TEST(RetentionConfigTest, FtlFallsBackToWindowPolicyOnBadConfig) {
  FtlConfig cfg = BaseConfig();
  cfg.retention_window = -Seconds(1);
  auto table = std::make_shared<version::RangePolicyTable>();
  ASSERT_TRUE(table->Add({0, 64, 4, Seconds(60)}));
  cfg.range_policies = table;

  PageFtl ftl(cfg);
  EXPECT_EQ(ftl.RetentionConfigStatus().issue,
            RetentionConfigIssue::kNegativeWindow);
  EXPECT_FALSE(ftl.Store().Enabled());
  EXPECT_TRUE(ftl.WritePage(0, {1, {}}, Seconds(1)).ok());
  EXPECT_TRUE(ftl.WritePage(0, {2, {}}, Seconds(2)).ok());
  EXPECT_EQ(ftl.ReadPage(0, Seconds(2)).data.stamp, 2u);
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

TEST(RetentionConfigTest, FtlAcceptsValidRangePolicies) {
  FtlConfig cfg = BaseConfig();
  auto table = std::make_shared<version::RangePolicyTable>();
  ASSERT_TRUE(table->Add({0, 64, 4, Seconds(60)}));
  cfg.range_policies = table;
  PageFtl ftl(cfg);
  EXPECT_TRUE(ftl.RetentionConfigStatus().ok());
  EXPECT_TRUE(ftl.Store().Enabled());
}

// --------------------------------------------------------------------------
// RangePolicyTable construction rules

TEST(RangePolicyTableTest, RejectsEmptyAndInvertedRanges) {
  version::RangePolicyTable t;
  EXPECT_FALSE(t.Add({10, 10, 4, Seconds(1)}));
  EXPECT_FALSE(t.Add({10, 5, 4, Seconds(1)}));
  EXPECT_EQ(t.RangeCount(), 0u);
}

TEST(RangePolicyTableTest, RejectsPolicyThatRetainsNothing) {
  version::RangePolicyTable t;
  EXPECT_FALSE(t.Add({0, 64, 0, 0}));
  EXPECT_FALSE(t.Add({0, 64, 4, -Seconds(1)}));
  EXPECT_TRUE(t.Add({0, 64, 4, 0}));   // count-only retention is fine
  version::RangePolicyTable t2;
  EXPECT_TRUE(t2.Add({0, 64, 0, Seconds(5)}));  // window-only too
}

TEST(RangePolicyTableTest, RejectsOverlap) {
  version::RangePolicyTable t;
  ASSERT_TRUE(t.Add({10, 20, 4, Seconds(1)}));
  EXPECT_FALSE(t.Add({15, 25, 4, Seconds(1)}));
  EXPECT_FALSE(t.Add({0, 11, 4, Seconds(1)}));
  EXPECT_FALSE(t.Add({10, 20, 8, Seconds(2)}));
  EXPECT_TRUE(t.Add({20, 25, 4, Seconds(1)}));  // adjacent is not overlap
  EXPECT_TRUE(t.Add({0, 10, 4, Seconds(1)}));
  EXPECT_EQ(t.RangeCount(), 3u);
}

TEST(RangePolicyTableTest, FindAndIndexOf) {
  version::RangePolicyTable t;
  ASSERT_TRUE(t.Add({100, 200, 4, Seconds(1)}));
  ASSERT_TRUE(t.Add({10, 20, 2, Seconds(2)}));

  EXPECT_TRUE(t.Protected(10));
  EXPECT_TRUE(t.Protected(19));
  EXPECT_FALSE(t.Protected(20));
  EXPECT_FALSE(t.Protected(9));
  EXPECT_TRUE(t.Protected(150));
  EXPECT_FALSE(t.Protected(200));

  const version::RangePolicy* p = t.Find(15);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->keep_versions, 2u);
  EXPECT_EQ(t.Find(50), nullptr);

  // Ranges() is sorted by begin; IndexOf follows that order.
  EXPECT_EQ(t.IndexOf(15), 0u);
  EXPECT_EQ(t.IndexOf(150), 1u);
  EXPECT_EQ(t.IndexOf(50), SIZE_MAX);
}

}  // namespace
}  // namespace insider::ftl
