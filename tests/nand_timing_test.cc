// Timing-model tests for the NAND array: die occupancy, channel sharing,
// and the latency arithmetic the Fig. 8 overhead argument rests on.
#include <gtest/gtest.h>

#include "nand/flash_array.h"

namespace insider::nand {
namespace {

Geometry TwoByTwo() {
  Geometry g;
  g.channels = 2;
  g.ways = 2;  // chips 0..3; channel = chip % 2
  g.blocks_per_chip = 4;
  g.pages_per_block = 4;
  return g;
}

TEST(NandTimingTest, ReadLatencyIsCellPlusTransfer) {
  LatencyModel lat;
  FlashArray nand(TwoByTwo(), lat);
  Ppa ppa = nand.Geo().MakePpa(0, 0, 0);
  ASSERT_TRUE(nand.ProgramPage(ppa, {1, {}}, 0).ok());
  SimTime idle = Seconds(1);  // after all queues drained
  NandResult r = nand.ReadPage(ppa, idle);
  EXPECT_EQ(r.complete_time, idle + lat.page_read + lat.channel_transfer);
}

TEST(NandTimingTest, EraseHoldsTheDie) {
  LatencyModel lat;
  FlashArray nand(TwoByTwo(), lat);
  const Geometry& g = nand.Geo();
  ASSERT_TRUE(nand.ProgramPage(g.MakePpa(0, 0, 0), {1, {}}, 0).ok());
  SimTime t0 = Seconds(1);
  // Erase one block of the die; a program to another block of the SAME die
  // submitted at the same instant queues behind the whole erase.
  NandResult er = nand.EraseBlock({0, 1}, t0);
  NandResult pr = nand.ProgramPage(g.MakePpa(0, 0, 1), {2, {}}, t0);
  ASSERT_TRUE(er.ok());
  ASSERT_TRUE(pr.ok());
  EXPECT_EQ(pr.complete_time,
            er.complete_time + lat.page_program + lat.channel_transfer);
}

TEST(NandTimingTest, SameDieOperationsQueue) {
  LatencyModel lat;
  FlashArray nand(TwoByTwo(), lat);
  const Geometry& g = nand.Geo();
  SimTime t = Seconds(1);
  NandResult a = nand.ProgramPage(g.MakePpa(0, 0, 0), {1, {}}, t);
  NandResult b = nand.ProgramPage(g.MakePpa(0, 0, 1), {2, {}}, t);
  NandResult c = nand.ProgramPage(g.MakePpa(0, 0, 2), {3, {}}, t);
  SimTime unit = lat.page_program + lat.channel_transfer;
  EXPECT_EQ(a.complete_time, t + unit);
  EXPECT_EQ(b.complete_time, t + 2 * unit);
  EXPECT_EQ(c.complete_time, t + 3 * unit);
}

TEST(NandTimingTest, ChipsOnSameChannelShareTheBus) {
  LatencyModel lat;
  FlashArray nand(TwoByTwo(), lat);
  const Geometry& g = nand.Geo();
  // Chips 0 and 2 share channel 0.
  ASSERT_EQ(g.ChannelOfChip(0), g.ChannelOfChip(2));
  SimTime t = Seconds(1);
  NandResult a = nand.ProgramPage(g.MakePpa(0, 0, 0), {1, {}}, t);
  NandResult b = nand.ProgramPage(g.MakePpa(2, 0, 0), {2, {}}, t);
  // The second op starts only after the first releases the shared bus.
  EXPECT_GT(b.complete_time, a.complete_time);
}

TEST(NandTimingTest, ChipsOnDifferentChannelsOverlapFully) {
  LatencyModel lat;
  FlashArray nand(TwoByTwo(), lat);
  const Geometry& g = nand.Geo();
  ASSERT_NE(g.ChannelOfChip(0), g.ChannelOfChip(1));
  SimTime t = Seconds(1);
  NandResult a = nand.ProgramPage(g.MakePpa(0, 0, 0), {1, {}}, t);
  NandResult b = nand.ProgramPage(g.MakePpa(1, 0, 0), {2, {}}, t);
  EXPECT_EQ(a.complete_time, b.complete_time);
}

TEST(NandTimingTest, EraseIsSlowerThanProgramIsSlowerThanRead) {
  LatencyModel lat;
  // The orders of magnitude the paper's overhead argument needs.
  EXPECT_GT(lat.block_erase, lat.page_program);
  EXPECT_GT(lat.page_program, lat.page_read);
  EXPECT_GE(lat.page_read, Microseconds(10));
}

TEST(NandTimingTest, SubmissionAfterBusyTimeStartsImmediately) {
  LatencyModel lat;
  FlashArray nand(TwoByTwo(), lat);
  const Geometry& g = nand.Geo();
  NandResult a = nand.ProgramPage(g.MakePpa(0, 0, 0), {1, {}}, 0);
  // Submit long after the die went idle: no queueing delay.
  SimTime later = a.complete_time + Seconds(1);
  NandResult b = nand.ProgramPage(g.MakePpa(0, 0, 1), {2, {}}, later);
  EXPECT_EQ(b.complete_time,
            later + lat.page_program + lat.channel_transfer);
}

TEST(NandTimingTest, FailedOperationsConsumeNoTime) {
  LatencyModel lat;
  FlashArray nand(TwoByTwo(), lat);
  const Geometry& g = nand.Geo();
  SimTime t = Seconds(1);
  NandResult bad = nand.ReadPage(g.MakePpa(0, 0, 0), t);  // erased page
  EXPECT_EQ(bad.status, NandStatus::kReadOfErasedPage);
  EXPECT_EQ(bad.complete_time, t);
  // The die is still free: a program right after completes in one unit.
  NandResult ok = nand.ProgramPage(g.MakePpa(0, 0, 0), {1, {}}, t);
  EXPECT_EQ(ok.complete_time, t + lat.page_program + lat.channel_transfer);
}

TEST(NandTimingTest, CountersIgnoreFailedOperations) {
  FlashArray nand(TwoByTwo(), LatencyModel::Zero());
  const Geometry& g = nand.Geo();
  nand.ReadPage(g.MakePpa(0, 0, 0), 0);                   // fails
  nand.ProgramPage(g.MakePpa(0, 0, 2), {1, {}}, 0);       // out of order
  EXPECT_EQ(nand.Counters().page_reads, 0u);
  EXPECT_EQ(nand.Counters().page_programs, 0u);
}

TEST(NandTimingTest, ResetCountersClears) {
  FlashArray nand(TwoByTwo(), LatencyModel::Zero());
  const Geometry& g = nand.Geo();
  nand.ProgramPage(g.MakePpa(0, 0, 0), {1, {}}, 0);
  nand.ResetCounters();
  EXPECT_EQ(nand.Counters().page_programs, 0u);
  // Data untouched by the counter reset.
  EXPECT_TRUE(nand.IsProgrammed(g.MakePpa(0, 0, 0)));
}

}  // namespace
}  // namespace insider::nand
