// Experiment-runner tests: the scoring/aggregation machinery behind the
// Fig. 7/9 and latency reproductions, checked against trees with known
// behavior.
#include <gtest/gtest.h>

#include "core/pretrained.h"
#include "host/experiment.h"

namespace insider::host {
namespace {

core::DecisionTree ConstantTree(bool label) {
  core::DecisionTree t;
  t.AddLeaf(label);
  return t;
}

ScenarioConfig QuickScenario() {
  ScenarioConfig c;
  c.duration = Seconds(20);
  c.ransom_start = Seconds(5);
  c.fileset_files = 300;
  return c;
}

TEST(RunDetectionTest, AlwaysBenignTreeNeverAlarms) {
  BuiltScenario s = BuildScenario({wl::AppKind::kNone, "WannaCry", ""},
                                  QuickScenario(), 1);
  DetectionRun run = RunDetection(ConstantTree(false), core::DetectorConfig{},
                                  s.merged);
  EXPECT_EQ(run.max_score, 0);
  EXPECT_FALSE(run.alarm_time.has_value());
}

TEST(RunDetectionTest, AlwaysRansomTreeSaturatesTheScore) {
  BuiltScenario s = BuildScenario({wl::AppKind::kWebSurfing, "", ""},
                                  QuickScenario(), 1);
  core::DetectorConfig dc;
  DetectionRun run = RunDetection(ConstantTree(true), dc, s.merged);
  EXPECT_EQ(run.max_score, static_cast<int>(dc.window_slices));
  ASSERT_TRUE(run.alarm_time.has_value());
  // With every slice voting, the alarm fires after `threshold` slices.
  EXPECT_EQ(*run.alarm_time, dc.slice_length * dc.score_threshold);
}

TEST(RunDetectionTest, ScoredFromExcludesEarlierSlices) {
  BuiltScenario s = BuildScenario({wl::AppKind::kWebSurfing, "", ""},
                                  QuickScenario(), 1);
  DetectionRun run = RunDetection(ConstantTree(true), core::DetectorConfig{},
                                  s.merged, Seconds(1000));  // beyond the run
  EXPECT_GT(run.max_score, 0);
  EXPECT_EQ(run.max_score_scored, 0);
  EXPECT_FALSE(run.alarm_time.has_value());
}

TEST(RunDetectionTest, SlicesCoverTheWholeRun) {
  BuiltScenario s = BuildScenario({wl::AppKind::kWebSurfing, "", ""},
                                  QuickScenario(), 1);
  DetectionRun run = RunDetection(ConstantTree(false), core::DetectorConfig{},
                                  s.merged);
  ASSERT_FALSE(run.slices.empty());
  EXPECT_GE(run.slices.back().end_time,
            s.merged.back().request.time);
}

TEST(EvaluateAccuracyTest, AlwaysRansomTreeGivesFullFarZeroFrr) {
  AccuracyConfig ac;
  ac.scenario = QuickScenario();
  ac.repetitions = 2;
  std::vector<ScenarioSpec> specs = {
      {wl::AppKind::kWebSurfing, "Mole", ""}};
  std::vector<CategoryAccuracy> acc =
      EvaluateAccuracy(ConstantTree(true), specs, ac);
  ASSERT_EQ(acc.size(), 1u);
  for (const AccuracyPoint& p : acc[0].points) {
    EXPECT_DOUBLE_EQ(p.far, 1.0) << "threshold " << p.threshold;
    EXPECT_DOUBLE_EQ(p.frr, 0.0) << "threshold " << p.threshold;
  }
}

TEST(EvaluateAccuracyTest, AlwaysBenignTreeGivesZeroFarFullFrr) {
  AccuracyConfig ac;
  ac.scenario = QuickScenario();
  ac.repetitions = 2;
  std::vector<ScenarioSpec> specs = {
      {wl::AppKind::kWebSurfing, "Mole", ""}};
  std::vector<CategoryAccuracy> acc =
      EvaluateAccuracy(ConstantTree(false), specs, ac);
  ASSERT_EQ(acc.size(), 1u);
  for (const AccuracyPoint& p : acc[0].points) {
    EXPECT_DOUBLE_EQ(p.far, 0.0);
    EXPECT_DOUBLE_EQ(p.frr, 1.0);
  }
}

TEST(EvaluateAccuracyTest, CountsRunsPerCategory) {
  AccuracyConfig ac;
  ac.scenario = QuickScenario();
  ac.repetitions = 3;
  std::vector<ScenarioSpec> specs = {
      {wl::AppKind::kWebSurfing, "Mole", ""},
      {wl::AppKind::kOutlookSync, "Mole", ""},   // same category (Normal)
      {wl::AppKind::kNone, "Mole", ""},          // RansomOnly category
  };
  std::vector<CategoryAccuracy> acc =
      EvaluateAccuracy(ConstantTree(false), specs, ac);
  ASSERT_EQ(acc.size(), 2u);
  for (const CategoryAccuracy& ca : acc) {
    if (ca.category == wl::AppCategory::kNormal) {
      EXPECT_EQ(ca.points[0].ransom_runs, 6u);
      EXPECT_EQ(ca.points[0].benign_runs, 6u);
    } else {
      EXPECT_EQ(ca.category, wl::AppCategory::kNone);
      EXPECT_EQ(ca.points[0].ransom_runs, 3u);
      EXPECT_EQ(ca.points[0].benign_runs, 0u);  // no background to test
    }
  }
}

TEST(EvaluateAccuracyTest, FrrMonotoneFarAntitoneInThreshold) {
  AccuracyConfig ac;
  ac.scenario = QuickScenario();
  ac.repetitions = 2;
  std::vector<ScenarioSpec> specs = {{wl::AppKind::kWebSurfing, "Mole", ""}};
  std::vector<CategoryAccuracy> acc =
      EvaluateAccuracy(core::PretrainedTree(), specs, ac);
  for (const CategoryAccuracy& ca : acc) {
    for (std::size_t i = 1; i < ca.points.size(); ++i) {
      EXPECT_GE(ca.points[i].frr, ca.points[i - 1].frr);
      EXPECT_LE(ca.points[i].far, ca.points[i - 1].far);
    }
  }
}

TEST(LatencyTest, SkipsBenignSpecs) {
  AccuracyConfig ac;
  ac.scenario = QuickScenario();
  ac.repetitions = 1;
  std::vector<ScenarioSpec> specs = {{wl::AppKind::kWebSurfing, "", ""},
                                     {wl::AppKind::kNone, "WannaCry", ""}};
  std::vector<LatencyResult> results =
      MeasureDetectionLatency(core::PretrainedTree(), specs, ac);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].spec.ransomware, "WannaCry");
}

TEST(LatencyTest, DetectedLatenciesArePositiveAndBounded) {
  AccuracyConfig ac;
  ac.scenario = QuickScenario();
  ac.scenario.duration = Seconds(30);
  ac.scenario.fileset_files = 900;  // enough data to outlast the score ramp
  ac.repetitions = 2;
  std::vector<ScenarioSpec> specs = {{wl::AppKind::kNone, "WannaCry", ""}};
  std::vector<LatencyResult> results =
      MeasureDetectionLatency(core::PretrainedTree(), specs, ac);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].detected, results[0].runs);
  EXPECT_GT(results[0].mean_latency_s, 0.0);
  EXPECT_LE(results[0].max_latency_s, 10.0);  // the paper's bound
}

TEST(GcExperimentTest, InsiderNeverCopiesLessThanConventional) {
  GcExperimentConfig gc;
  gc.geometry = nand::TestGeometry();
  gc.geometry.blocks_per_chip = 64;
  gc.retention_window = Seconds(2);
  ScenarioConfig sc = QuickScenario();
  sc.lba_space = 1024;
  for (std::uint64_t seed : {1ull, 2ull}) {
    BuiltScenario s =
        BuildScenario({wl::AppKind::kDatabase, "", ""}, sc, seed);
    GcResult r = RunGcExperiment(s, gc);
    EXPECT_GE(r.copies_insider, r.copies_conventional) << "seed " << seed;
  }
}

TEST(GcExperimentTest, OverheadPercentComputation) {
  GcResult r;
  r.copies_conventional = 100;
  r.copies_insider = 122;
  EXPECT_NEAR(r.OverheadPercent(), 22.0, 1e-9);
  r.copies_conventional = 0;
  r.copies_insider = 0;
  EXPECT_DOUBLE_EQ(r.OverheadPercent(), 0.0);
  r.copies_insider = 5;
  EXPECT_DOUBLE_EQ(r.OverheadPercent(), 100.0);
}

TEST(ConsistencyTrialTest, UndetectedWithoutDetector) {
  // An always-benign tree means the attack completes: the trial must report
  // non-detection (the control case for Table II).
  ConsistencyTrialConfig cfg;
  cfg.file_count = 12;
  cfg.file_min_bytes = 32 * 1024;
  cfg.file_max_bytes = 64 * 1024;
  cfg.writer_phase = 0;
  cfg.seed = 2;
  ConsistencyTrialResult r =
      RunConsistencyTrial(ConstantTree(false), cfg);
  EXPECT_FALSE(r.detected);
  EXPECT_FALSE(r.rolled_back);
}

}  // namespace
}  // namespace insider::host
