#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/decision_tree.h"
#include "core/id3.h"
#include "core/pretrained.h"

namespace insider::core {
namespace {

/// Uniform double in [0, bound) — keeps the feature math in the double
/// domain without a cast at every call site.
double Dice(Rng& rng, std::uint64_t bound) {
  return static_cast<double>(rng.Below(bound));
}

FeatureVector Fv(double owio, double owst, double pwio, double avgwio,
                 double owslope, double io) {
  FeatureVector f;
  f[FeatureId::kOwIo] = owio;
  f[FeatureId::kOwSt] = owst;
  f[FeatureId::kPwIo] = pwio;
  f[FeatureId::kAvgWIo] = avgwio;
  f[FeatureId::kOwSlope] = owslope;
  f[FeatureId::kIo] = io;
  return f;
}

TEST(DecisionTreeTest, EmptyTreeVotesBenign) {
  DecisionTree t;
  EXPECT_FALSE(t.Classify(Fv(1e9, 1, 1e9, 1, 10, 1e9)));
}

TEST(DecisionTreeTest, SingleLeafTree) {
  DecisionTree t;
  t.AddLeaf(true);
  EXPECT_TRUE(t.Classify(Fv(0, 0, 0, 0, 0, 0)));
}

TEST(DecisionTreeTest, SplitRoutesBothWays) {
  DecisionTree t;
  std::int32_t benign = t.AddLeaf(false);
  std::int32_t ransom = t.AddLeaf(true);
  std::int32_t root = t.AddSplit(FeatureId::kOwIo, 100.0, benign, ransom);
  // Manually rotate root to index 0.
  std::vector<DecisionTree::Node> nodes = t.Nodes();
  std::swap(nodes[0], nodes[static_cast<std::size_t>(root)]);
  for (auto& n : nodes) {
    if (n.is_leaf) continue;
    if (n.left == 0) n.left = root;
    else if (n.left == root) n.left = 0;
    if (n.right == 0) n.right = root;
    else if (n.right == root) n.right = 0;
  }
  DecisionTree tree{std::move(nodes)};
  EXPECT_FALSE(tree.Classify(Fv(100, 0, 0, 0, 0, 0)));  // <= goes left
  EXPECT_TRUE(tree.Classify(Fv(101, 0, 0, 0, 0, 0)));
}

TEST(DecisionTreeTest, SerializeRoundTrip) {
  DecisionTree t = PretrainedTree();
  std::string text = t.Serialize();
  DecisionTree back = DecisionTree::Deserialize(text);
  EXPECT_EQ(back.NodeCount(), t.NodeCount());
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    FeatureVector f =
        Fv(Dice(rng, 5000), rng.Uniform(), Dice(rng, 20000), Dice(rng, 512),
           rng.Uniform() * 10, Dice(rng, 50000));
    EXPECT_EQ(t.Classify(f), back.Classify(f));
  }
}

TEST(DecisionTreeTest, DeserializeRejectsGarbage) {
  EXPECT_THROW(DecisionTree::Deserialize("not a tree"),
               std::invalid_argument);
  EXPECT_THROW(DecisionTree::Deserialize("tree v1 1\nsplit 99 0.5 0 0\n"),
               std::invalid_argument);
  EXPECT_THROW(DecisionTree::Deserialize("tree v1 2\nleaf 1\n"),
               std::invalid_argument);
  EXPECT_THROW(DecisionTree::Deserialize("tree v1 1\nsplit 0 0.5 5 6\n"),
               std::invalid_argument);
}

TEST(DecisionTreeTest, PrettyStringMentionsFeatures) {
  std::string pretty = PretrainedTree().ToPrettyString();
  EXPECT_NE(pretty.find("OWIO"), std::string::npos);
  EXPECT_NE(pretty.find("RANSOMWARE"), std::string::npos);
}

TEST(PretrainedTreeTest, FlagsClassicRansomwareSlice) {
  DecisionTree t = PretrainedTree();
  // Fast attack: heavy overwriting, overwrites dominate writes, short runs.
  EXPECT_TRUE(t.Classify(Fv(2000, 0.9, 8000, 10, 2.5, 4500)));
}

TEST(PretrainedTreeTest, PassesDataWipingSlice) {
  DecisionTree t = PretrainedTree();
  // Wiper: huge OWIO but OWST ~ 1/7 and very long runs.
  EXPECT_FALSE(t.Classify(Fv(5000, 0.14, 50000, 256, 1.0, 40000)));
}

TEST(PretrainedTreeTest, PassesIdleSlice) {
  DecisionTree t = PretrainedTree();
  EXPECT_FALSE(t.Classify(Fv(0, 0, 0, 0, 0, 0)));
}

TEST(PretrainedTreeTest, PassesDatabaseSlice) {
  DecisionTree t = PretrainedTree();
  // OLTP database: sustained window-level overwriting, but in whole-extent
  // flushes — the contiguous overwrite runs are far longer than any
  // document-encrypting ransomware's.
  EXPECT_FALSE(t.Classify(Fv(300, 0.5, 2600, 64, 1.0, 2500)));
  EXPECT_FALSE(t.Classify(Fv(900, 0.5, 6000, 64, 1.5, 3000)));
}

TEST(PretrainedTreeTest, FlagsSlowAttackViaPwio) {
  DecisionTree t = PretrainedTree();
  // Slow ransomware under load: the slice OWIO is modest but the window
  // total is high and runs are short.
  EXPECT_TRUE(t.Classify(Fv(300, 0.4, 3000, 8, 1.0, 900)));
}

TEST(BinaryEntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(5, 10), 1.0);
  EXPECT_NEAR(BinaryEntropy(1, 4), 0.8113, 1e-4);
}

TEST(Id3Test, EmptySamplesYieldEmptyTree) {
  EXPECT_TRUE(TrainId3({}).Empty());
}

TEST(Id3Test, PureSamplesYieldSingleLeaf) {
  std::vector<Sample> samples(10);
  for (auto& s : samples) s.ransomware = true;
  DecisionTree t = TrainId3(samples);
  EXPECT_EQ(t.NodeCount(), 1u);
  EXPECT_TRUE(t.Classify(Fv(0, 0, 0, 0, 0, 0)));
}

TEST(Id3Test, LearnsSingleThreshold) {
  std::vector<Sample> samples;
  for (int i = 0; i < 50; ++i) {
    Sample s;
    s.features = Fv(i, 0, 0, 0, 0, 0);
    s.ransomware = i >= 25;
    samples.push_back(s);
  }
  DecisionTree t = TrainId3(samples);
  EXPECT_DOUBLE_EQ(Accuracy(t, samples), 1.0);
  EXPECT_FALSE(t.Classify(Fv(10, 0, 0, 0, 0, 0)));
  EXPECT_TRUE(t.Classify(Fv(40, 0, 0, 0, 0, 0)));
}

TEST(Id3Test, LearnsConjunction) {
  // ransomware iff OWIO > 100 AND OWST > 0.5 — needs a two-level tree.
  std::vector<Sample> samples;
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    double owio = Dice(rng, 200);
    double owst = rng.Uniform();
    Sample s;
    s.features = Fv(owio, owst, 0, 0, 0, 0);
    s.ransomware = owio > 100 && owst > 0.5;
    samples.push_back(s);
  }
  DecisionTree t = TrainId3(samples);
  EXPECT_GE(Accuracy(t, samples), 0.98);
  EXPECT_GE(t.Depth(), 2u);
}

TEST(Id3Test, MaxDepthLimitsTree) {
  std::vector<Sample> samples;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    Sample s;
    s.features = Fv(Dice(rng, 100), rng.Uniform(), Dice(rng, 100),
                    Dice(rng, 100), rng.Uniform(), Dice(rng, 100));
    s.ransomware = rng.Chance(0.5);  // pure noise
    samples.push_back(s);
  }
  Id3Config cfg;
  cfg.max_depth = 3;
  DecisionTree t = TrainId3(samples, cfg);
  EXPECT_LE(t.Depth(), 4u);  // depth counts nodes on the path
}

TEST(Id3Test, IgnoresIrrelevantFeatures) {
  // Only AVGWIO carries signal; the learned root should split on it.
  std::vector<Sample> samples;
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    double avg = Dice(rng, 100);
    Sample s;
    s.features = Fv(50, 0.5, 50, avg, 1.0, 100);
    s.ransomware = avg < 30;
    samples.push_back(s);
  }
  DecisionTree t = TrainId3(samples);
  ASSERT_FALSE(t.Empty());
  EXPECT_FALSE(t.Nodes()[0].is_leaf);
  EXPECT_EQ(t.Nodes()[0].feature, FeatureId::kAvgWIo);
  EXPECT_DOUBLE_EQ(Accuracy(t, samples), 1.0);
}

TEST(Id3Test, TrainedTreeSerializesAndReloads) {
  std::vector<Sample> samples;
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    Sample s;
    s.features = Fv(Dice(rng, 1000), rng.Uniform(), Dice(rng, 1000),
                    Dice(rng, 100), rng.Uniform(), Dice(rng, 1000));
    s.ransomware = s.features.owio() > 500 || s.features.owst() > 0.8;
    samples.push_back(s);
  }
  DecisionTree t = TrainId3(samples);
  DecisionTree back = DecisionTree::Deserialize(t.Serialize());
  for (const Sample& s : samples) {
    EXPECT_EQ(t.Classify(s.features), back.Classify(s.features));
  }
}

}  // namespace
}  // namespace insider::core
