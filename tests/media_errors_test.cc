// Media-error (ECC) model tests: error sampling, wear dependence, the FTL's
// lost-page handling, and the recovery queue's tombstone machinery.
#include <gtest/gtest.h>

#include "ftl/page_ftl.h"
#include "ftl/recovery_queue.h"
#include "nand/flash_array.h"

namespace insider {
namespace {

TEST(ErrorModelTest, DisabledByDefault) {
  nand::ErrorModel m;
  EXPECT_FALSE(m.Enabled());
  nand::FlashArray nand(nand::TestGeometry());
  nand::Ppa ppa = nand.Geo().MakePpa(0, 0, 0);
  nand.ProgramPage(ppa, {1, {}}, 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(nand.ReadPage(ppa, 0).ok());
  }
  EXPECT_EQ(nand.Counters().corrected_reads, 0u);
  EXPECT_EQ(nand.Counters().uncorrectable_reads, 0u);
}

TEST(ErrorModelTest, EffectiveBerGrowsWithWear) {
  nand::ErrorModel m;
  m.base_ber = 1e-6;
  m.wear_factor = 0.01;
  EXPECT_DOUBLE_EQ(m.EffectiveBer(0), 1e-6);
  EXPECT_GT(m.EffectiveBer(1000), 10 * m.EffectiveBer(0));
}

TEST(ErrorModelTest, ModerateBerIsMostlyCorrected) {
  // lambda = 1e-5 * 32768 bits ~ 0.33 errors/page: ECC with budget 8
  // corrects everything; no retries, no failures.
  nand::ErrorModel m;
  m.base_ber = 1e-5;
  nand::FlashArray nand(nand::TestGeometry(), nand::LatencyModel::Zero(), m);
  nand::Ppa ppa = nand.Geo().MakePpa(0, 0, 0);
  nand.ProgramPage(ppa, {1, {}}, 0);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(nand.ReadPage(ppa, 0).ok());
  }
  EXPECT_GT(nand.Counters().corrected_reads, 500u);
  EXPECT_EQ(nand.Counters().uncorrectable_reads, 0u);
}

TEST(ErrorModelTest, ExtremeBerFailsUncorrectably) {
  // lambda ~ 33 errors/page >> the 8-bit budget: every read fails.
  nand::ErrorModel m;
  m.base_ber = 1e-3;
  nand::FlashArray nand(nand::TestGeometry(), nand::LatencyModel::Zero(), m);
  nand::Ppa ppa = nand.Geo().MakePpa(0, 0, 0);
  nand.ProgramPage(ppa, {1, {}}, 0);
  int failures = 0;
  for (int i = 0; i < 100; ++i) {
    if (nand.ReadPage(ppa, 0).status == nand::NandStatus::kUncorrectableEcc) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 90);
  EXPECT_GT(nand.Counters().uncorrectable_reads, 90u);
}

TEST(ErrorModelTest, RetryBandAddsLatency) {
  // lambda ~ 10.5: usually in (8, 16] -> retry with extra latency.
  nand::ErrorModel m;
  m.base_ber = 3.2e-4;
  m.retry_latency = Microseconds(80);
  nand::LatencyModel lat;
  nand::FlashArray nand(nand::TestGeometry(), lat, m);
  nand::Ppa ppa = nand.Geo().MakePpa(0, 0, 0);
  nand.ProgramPage(ppa, {1, {}}, 0);
  bool saw_retry_latency = false;
  for (int i = 0; i < 200; ++i) {
    SimTime t = Seconds(1) + i * Seconds(1);  // idle die each time
    nand::NandResult r = nand.ReadPage(ppa, t);
    if (r.ok() &&
        r.complete_time ==
            t + lat.page_read + m.retry_latency + lat.channel_transfer) {
      saw_retry_latency = true;
    }
  }
  EXPECT_TRUE(saw_retry_latency);
  EXPECT_GT(nand.Counters().read_retries, 0u);
}

TEST(ErrorModelTest, DeterministicForSeed) {
  nand::ErrorModel m;
  m.base_ber = 2e-4;
  auto run = [&](std::uint64_t seed) {
    nand::FlashArray nand(nand::TestGeometry(), nand::LatencyModel::Zero(), m,
                          seed);
    nand::Ppa ppa = nand.Geo().MakePpa(0, 0, 0);
    nand.ProgramPage(ppa, {1, {}}, 0);
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(nand.ReadPage(ppa, 0).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// --- FTL behavior under media errors ---------------------------------------

ftl::FtlConfig ErrorFtl(double ber) {
  ftl::FtlConfig c;
  c.geometry = nand::TestGeometry();
  c.latency = nand::LatencyModel::Zero();
  c.errors.base_ber = ber;
  c.exported_fraction = 0.5;
  return c;
}

TEST(FtlMediaErrorTest, HostReadSurfacesReadError) {
  ftl::PageFtl ftl(ErrorFtl(1e-3));  // every read fails
  ASSERT_TRUE(ftl.WritePage(3, {1, {}}, 0).ok());
  EXPECT_EQ(ftl.ReadPage(3, 0).status, ftl::FtlStatus::kReadError);
}

TEST(FtlMediaErrorTest, GcSurvivesLostPages) {
  // With a harsh error rate, GC relocation loses pages; the FTL must stay
  // internally consistent and account the losses.
  ftl::PageFtl ftl(ErrorFtl(4e-4));  // lambda ~ 13: retries and failures mix
  Lba n = ftl.ExportedLbas();
  Rng rng(3);
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, {lba, {}}, Seconds(1)).ok());
  }
  for (int i = 0; i < 3000; ++i) {
    // Spread over time so backups expire and GC churns.
    SimTime t = Seconds(2) + CostOf(static_cast<std::uint64_t>(i), 20'000);
    ASSERT_TRUE(
        ftl.WritePage(rng.Below(n), {static_cast<std::uint64_t>(i), {}}, t)
            .ok());
  }
  EXPECT_GT(ftl.Stats().gc_lost_pages, 0u);
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

// --- Recovery-queue tombstones ---------------------------------------------

TEST(QueueDropTest, DropRemovesGuardAndSize) {
  ftl::RecoveryQueue q;
  q.Push(1, 100, 1);
  q.Push(2, 101, 2);
  EXPECT_TRUE(q.Drop(100));
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_FALSE(q.Guards(100));
  EXPECT_FALSE(q.Drop(100));  // already gone
}

TEST(QueueDropTest, PopsSkipTombstones) {
  ftl::RecoveryQueue q;
  q.Push(1, 100, 1);
  q.Push(2, 101, 2);
  q.Push(3, 102, 3);
  q.Drop(100);
  auto e = q.PopOldest();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->lba, 2u);
}

TEST(QueueDropTest, RollbackSkipsTombstones) {
  ftl::RecoveryQueue q;
  q.Push(1, 100, Seconds(20));
  q.Push(2, 101, Seconds(21));
  q.Drop(101);
  std::vector<Lba> reverted;
  q.RollBack(Seconds(10),
             [&](const ftl::BackupEntry& e) { reverted.push_back(e.lba); });
  EXPECT_EQ(reverted, std::vector<Lba>{1});
  EXPECT_TRUE(q.Empty());
}

TEST(QueueDropTest, ReleaseSkipsTombstones) {
  ftl::RecoveryQueue q;
  q.Push(1, 100, 1);
  q.Push(2, 101, 2);
  q.Drop(100);
  std::size_t released = 0;
  q.ReleaseUpTo(10, [&](const ftl::BackupEntry&) { ++released; });
  EXPECT_EQ(released, 1u);
  EXPECT_TRUE(q.Empty());
}

TEST(QueueDropTest, CapacityCountsLiveEntriesOnly) {
  ftl::RecoveryQueue q(2);
  q.Push(1, 100, 1);
  q.Push(2, 101, 2);
  q.Drop(100);
  // One live entry: pushing doesn't evict the live one.
  auto evicted = q.Push(3, 102, 3);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_EQ(q.Size(), 2u);
}

TEST(QueueDropTest, RelocateAfterDropFails) {
  ftl::RecoveryQueue q;
  q.Push(1, 100, 1);
  q.Drop(100);
  EXPECT_FALSE(q.Relocate(100, 200));
}

}  // namespace
}  // namespace insider
