#include <gtest/gtest.h>

#include "nand/flash_array.h"
#include "nand/geometry.h"

namespace insider::nand {
namespace {

TEST(GeometryTest, DerivedQuantities) {
  Geometry g;
  g.channels = 8;
  g.ways = 8;
  g.blocks_per_chip = 64;
  g.pages_per_block = 64;
  g.page_size = 4096;
  EXPECT_EQ(g.TotalChips(), 64u);
  EXPECT_EQ(g.PagesPerChip(), 4096u);
  EXPECT_EQ(g.TotalBlocks(), 4096u);
  EXPECT_EQ(g.TotalPages(), 262144u);
  EXPECT_EQ(g.CapacityBytes(), 1ull << 30);  // 1 GB
}

TEST(GeometryTest, PpaRoundTrip) {
  Geometry g = TestGeometry();
  for (std::uint32_t chip = 0; chip < g.TotalChips(); ++chip) {
    for (std::uint32_t block = 0; block < g.blocks_per_chip; block += 3) {
      for (std::uint32_t page = 0; page < g.pages_per_block; ++page) {
        Ppa ppa = g.MakePpa(chip, block, page);
        EXPECT_EQ(g.ChipOf(ppa), chip);
        EXPECT_EQ(g.BlockOf(ppa), block);
        EXPECT_EQ(g.PageOf(ppa), page);
      }
    }
  }
}

TEST(GeometryTest, PpaIsDense) {
  Geometry g = TestGeometry();
  Ppa expected = 0;
  for (std::uint32_t chip = 0; chip < g.TotalChips(); ++chip) {
    for (std::uint32_t block = 0; block < g.blocks_per_chip; ++block) {
      for (std::uint32_t page = 0; page < g.pages_per_block; ++page) {
        EXPECT_EQ(g.MakePpa(chip, block, page), expected++);
      }
    }
  }
  EXPECT_EQ(expected, g.TotalPages());
}

TEST(GeometryTest, ChannelStriping) {
  Geometry g;
  g.channels = 4;
  g.ways = 2;
  EXPECT_EQ(g.ChannelOfChip(0), 0u);
  EXPECT_EQ(g.ChannelOfChip(1), 1u);
  EXPECT_EQ(g.ChannelOfChip(4), 0u);
  EXPECT_EQ(g.ChannelOfChip(7), 3u);
}

TEST(BlockTest, SequentialProgramEnforced) {
  Block b(4);
  EXPECT_TRUE(b.IsErased());
  EXPECT_TRUE(b.Program(0, {1, {}}));
  EXPECT_FALSE(b.Program(2, {2, {}}));  // out of order
  EXPECT_TRUE(b.Program(1, {3, {}}));
  EXPECT_EQ(b.WritePointer(), 2u);
}

TEST(BlockTest, CannotProgramFullBlock) {
  Block b(2);
  EXPECT_TRUE(b.Program(0, {}));
  EXPECT_TRUE(b.Program(1, {}));
  EXPECT_TRUE(b.IsFull());
  EXPECT_FALSE(b.Program(0, {}));
}

TEST(BlockTest, ReadOfErasedPageIsNull) {
  Block b(4);
  EXPECT_EQ(b.Read(0), nullptr);
  b.Program(0, {77, {}});
  ASSERT_NE(b.Read(0), nullptr);
  EXPECT_EQ(b.Read(0)->stamp, 77u);
  EXPECT_EQ(b.Read(1), nullptr);
}

TEST(BlockTest, EraseResetsAndCounts) {
  Block b(2);
  b.Program(0, {1, {}});
  b.Program(1, {2, {}});
  b.Erase();
  EXPECT_TRUE(b.IsErased());
  EXPECT_EQ(b.EraseCount(), 1u);
  EXPECT_EQ(b.Read(0), nullptr);
  EXPECT_TRUE(b.Program(0, {3, {}}));
}

class FlashArrayTest : public ::testing::Test {
 protected:
  Geometry geo_ = TestGeometry();
  FlashArray nand_{geo_};
};

TEST_F(FlashArrayTest, ProgramThenRead) {
  Ppa ppa = geo_.MakePpa(0, 0, 0);
  NandResult w = nand_.ProgramPage(ppa, {42, {}}, 0);
  ASSERT_TRUE(w.ok());
  NandResult r = nand_.ReadPage(ppa, w.complete_time);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data->stamp, 42u);
}

TEST_F(FlashArrayTest, ReadOfErasedPageFails) {
  NandResult r = nand_.ReadPage(geo_.MakePpa(0, 0, 0), 0);
  EXPECT_EQ(r.status, NandStatus::kReadOfErasedPage);
}

TEST_F(FlashArrayTest, OutOfOrderProgramFails) {
  NandResult r = nand_.ProgramPage(geo_.MakePpa(0, 0, 3), {}, 0);
  EXPECT_EQ(r.status, NandStatus::kProgramOutOfOrder);
}

TEST_F(FlashArrayTest, BadAddressRejected) {
  EXPECT_EQ(nand_.ReadPage(geo_.TotalPages(), 0).status,
            NandStatus::kBadAddress);
  EXPECT_EQ(nand_.EraseBlock({geo_.TotalChips(), 0}, 0).status,
            NandStatus::kBadAddress);
}

TEST_F(FlashArrayTest, EraseMakesBlockProgrammableAgain) {
  Ppa ppa = geo_.MakePpa(1, 2, 0);
  ASSERT_TRUE(nand_.ProgramPage(ppa, {1, {}}, 0).ok());
  ASSERT_TRUE(nand_.EraseBlock({1, 2}, 0).ok());
  EXPECT_FALSE(nand_.IsProgrammed(ppa));
  EXPECT_TRUE(nand_.ProgramPage(ppa, {2, {}}, 0).ok());
}

TEST_F(FlashArrayTest, CountersTrackOperations) {
  Ppa ppa = geo_.MakePpa(0, 0, 0);
  nand_.ProgramPage(ppa, {}, 0);
  nand_.ReadPage(ppa, 0);
  nand_.ReadPage(ppa, 0);
  nand_.EraseBlock({0, 0}, 0);
  EXPECT_EQ(nand_.Counters().page_programs, 1u);
  EXPECT_EQ(nand_.Counters().page_reads, 2u);
  EXPECT_EQ(nand_.Counters().block_erases, 1u);
}

TEST_F(FlashArrayTest, LatencyAccountedPerOperation) {
  LatencyModel lat;
  FlashArray nand(geo_, lat);
  NandResult w = nand.ProgramPage(geo_.MakePpa(0, 0, 0), {}, 1000);
  EXPECT_EQ(w.complete_time, 1000 + lat.page_program + lat.channel_transfer);
}

TEST_F(FlashArrayTest, SameChipOperationsSerialize) {
  LatencyModel lat;
  FlashArray nand(geo_, lat);
  Ppa p0 = geo_.MakePpa(0, 0, 0);
  Ppa p1 = geo_.MakePpa(0, 0, 1);
  NandResult w0 = nand.ProgramPage(p0, {}, 0);
  NandResult w1 = nand.ProgramPage(p1, {}, 0);
  // Second program on the same die starts only after the first completes.
  EXPECT_EQ(w1.complete_time,
            w0.complete_time + lat.page_program + lat.channel_transfer);
}

TEST_F(FlashArrayTest, DifferentChannelsRunInParallel) {
  LatencyModel lat;
  FlashArray nand(geo_, lat);
  // TestGeometry has 2 channels; chips 0 and 1 sit on different channels.
  NandResult a = nand.ProgramPage(geo_.MakePpa(0, 0, 0), {}, 0);
  NandResult b = nand.ProgramPage(geo_.MakePpa(1, 0, 0), {}, 0);
  EXPECT_EQ(a.complete_time, b.complete_time);  // full overlap
}

TEST_F(FlashArrayTest, ZeroLatencyModelCompletesInstantly) {
  FlashArray nand(geo_, LatencyModel::Zero());
  NandResult w = nand.ProgramPage(geo_.MakePpa(0, 0, 0), {}, 555);
  EXPECT_EQ(w.complete_time, 555);
}

TEST_F(FlashArrayTest, PayloadBytesSurviveRoundTrip) {
  PageData data;
  data.stamp = 9;
  data.bytes.assign(4096, std::byte{0xAB});
  Ppa ppa = geo_.MakePpa(2, 1, 0);
  ASSERT_TRUE(nand_.ProgramPage(ppa, data, 0).ok());
  NandResult r = nand_.ReadPage(ppa, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.data, data);
}

TEST_F(FlashArrayTest, EraseCountsAggregate) {
  nand_.ProgramPage(geo_.MakePpa(0, 0, 0), {}, 0);
  nand_.EraseBlock({0, 0}, 0);
  nand_.EraseBlock({0, 0}, 0);
  nand_.EraseBlock({1, 1}, 0);
  EXPECT_EQ(nand_.TotalEraseCount(), 3u);
  EXPECT_EQ(nand_.MaxEraseCount(), 2u);
}

}  // namespace
}  // namespace insider::nand
