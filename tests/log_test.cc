// Logging tests: level gating and the stream interface.
#include <gtest/gtest.h>

#include "common/log.h"

namespace insider {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LogTest, DefaultLevelIsWarn) {
  // The library must stay quiet in tests/benches by default.
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
}

TEST_F(LogTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LogTest, LevelsCompareInSeverityOrder) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
}

TEST_F(LogTest, DisabledAndEnabledPathsBothSafe) {
  SetLogLevel(LogLevel::kError);
  INSIDER_LOG_DEBUG << "suppressed " << 42 << " " << 3.14;
  INSIDER_LOG_WARN << "suppressed too";
  SetLogLevel(LogLevel::kDebug);
  INSIDER_LOG_DEBUG << "debug visible " << 1;
  INSIDER_LOG_ERROR << "error visible " << 2.5;
  SUCCEED();
}

TEST_F(LogTest, AllLevelsEmitWhenFullyVerbose) {
  SetLogLevel(LogLevel::kDebug);
  INSIDER_LOG_DEBUG << "d";
  INSIDER_LOG_INFO << "i";
  INSIDER_LOG_WARN << "w";
  INSIDER_LOG_ERROR << "e";
  SUCCEED();
}

}  // namespace
}  // namespace insider
