// FirmwareScheduler: ordering, periodic catch-up, cancellation, and the
// drain contract the Ssd's background tasks rely on.
#include <gtest/gtest.h>

#include <vector>

#include "host/firmware_scheduler.h"

namespace insider::host {
namespace {

TEST(FirmwareSchedulerTest, RunsTasksInDueOrder) {
  FirmwareScheduler sched;
  std::vector<int> order;
  sched.Schedule("b", 200, [&](SimTime) {
    order.push_back(2);
    return FirmwareScheduler::kNever;
  });
  sched.Schedule("a", 100, [&](SimTime) {
    order.push_back(1);
    return FirmwareScheduler::kNever;
  });
  sched.Schedule("c", 300, [&](SimTime) {
    order.push_back(3);
    return FirmwareScheduler::kNever;
  });
  EXPECT_EQ(sched.RunUntil(250), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.PendingTasks(), 1u);
  EXPECT_EQ(sched.RunUntil(300), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.PendingTasks(), 0u);
}

TEST(FirmwareSchedulerTest, TiesRunInRegistrationOrder) {
  FirmwareScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sched.Schedule("tie", 100, [&order, i](SimTime) {
      order.push_back(i);
      return FirmwareScheduler::kNever;
    });
  }
  sched.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FirmwareSchedulerTest, TaskSeesItsOwnDueTimeNotTheDrainHorizon) {
  FirmwareScheduler sched;
  std::vector<SimTime> seen;
  sched.Schedule("periodic", 100, [&](SimTime now) {
    seen.push_back(now);
    return now + 100;
  });
  // Draining far past several periods runs one invocation per period, each
  // at its own timestamp — how the retention tick ages backups through a
  // long idle stretch without skipping horizons.
  sched.RunUntil(450);
  EXPECT_EQ(seen, (std::vector<SimTime>{100, 200, 300, 400}));
  EXPECT_EQ(sched.PendingTasks(), 1u);  // next due at 500
}

TEST(FirmwareSchedulerTest, ReturningKNeverRetiresTheTask) {
  FirmwareScheduler sched;
  int runs = 0;
  sched.Schedule("oneshot", 50, [&](SimTime) {
    ++runs;
    return FirmwareScheduler::kNever;
  });
  sched.RunUntil(1000);
  sched.RunUntil(2000);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(sched.PendingTasks(), 0u);
}

TEST(FirmwareSchedulerTest, CancelPreventsExecution) {
  FirmwareScheduler sched;
  int runs = 0;
  FirmwareScheduler::TaskId id = sched.Schedule("doomed", 100, [&](SimTime) {
    ++runs;
    return FirmwareScheduler::kNever;
  });
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(id));  // already gone
  EXPECT_EQ(sched.RunUntil(1000), 0u);
  EXPECT_EQ(runs, 0);
}

TEST(FirmwareSchedulerTest, RescheduleMovesTheDueTime) {
  FirmwareScheduler sched;
  std::vector<SimTime> seen;
  FirmwareScheduler::TaskId id = sched.Schedule("moved", 100, [&](SimTime t) {
    seen.push_back(t);
    return FirmwareScheduler::kNever;
  });
  EXPECT_TRUE(sched.Reschedule(id, 500));
  EXPECT_EQ(sched.RunUntil(400), 0u);  // the stale 100 entry is skipped
  EXPECT_EQ(sched.RunUntil(500), 1u);
  EXPECT_EQ(seen, (std::vector<SimTime>{500}));
  EXPECT_FALSE(sched.Reschedule(id, 900));  // retired
}

TEST(FirmwareSchedulerTest, NextDueTracksEarliestPendingTask) {
  FirmwareScheduler sched;
  EXPECT_FALSE(sched.NextDue().has_value());
  sched.Schedule("late", 700, [](SimTime) {
    return FirmwareScheduler::kNever;
  });
  FirmwareScheduler::TaskId early =
      sched.Schedule("early", 300, [](SimTime) {
        return FirmwareScheduler::kNever;
      });
  EXPECT_EQ(sched.NextDue().value(), 300);
  sched.Cancel(early);
  EXPECT_EQ(sched.NextDue().value(), 700);
}

TEST(FirmwareSchedulerTest, TaskMayScheduleFollowUpWork) {
  FirmwareScheduler sched;
  int follow_up_runs = 0;
  sched.Schedule("parent", 100, [&](SimTime now) {
    sched.Schedule("child", now + 50, [&](SimTime) {
      ++follow_up_runs;
      return FirmwareScheduler::kNever;
    });
    return FirmwareScheduler::kNever;
  });
  // The child came due within the same drain window, so the drain picks it
  // up too — exactly how an armed GC task chains quanta.
  EXPECT_EQ(sched.RunUntil(200), 2u);
  EXPECT_EQ(follow_up_runs, 1);
}

TEST(FirmwareSchedulerTest, StatsCountSchedulingActivity) {
  FirmwareScheduler sched;
  FirmwareScheduler::TaskId a = sched.Schedule("a", 10, [](SimTime now) {
    return now < 30 ? now + 10 : FirmwareScheduler::kNever;
  });
  sched.Schedule("b", 10, [](SimTime) { return FirmwareScheduler::kNever; });
  (void)a;
  sched.RunUntil(100);
  const FirmwareScheduler::Stats& st = sched.GetStats();
  EXPECT_EQ(st.scheduled, 2u);
  EXPECT_EQ(st.runs, 4u);  // a at 10,20,30 + b at 10
  EXPECT_EQ(st.cancelled, 0u);
}

}  // namespace
}  // namespace insider::host
