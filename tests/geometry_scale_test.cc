// Geometry presets, typed validation, and 64-bit PPA arithmetic at the
// paper's device scale (ISSUE 7): Geometry::PaperScale() is the 8-channel x
// 8-way 512 GB shape every prior result approximated with toy geometries.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "nand/geometry.h"

namespace insider::nand {
namespace {

TEST(GeometryPresetTest, ToyMatchesHistoricalTestGeometry) {
  Geometry toy = Geometry::Toy();
  EXPECT_EQ(toy.channels, 2u);
  EXPECT_EQ(toy.ways, 2u);
  EXPECT_EQ(toy.blocks_per_chip, 16u);
  EXPECT_EQ(toy.pages_per_block, 8u);
  EXPECT_EQ(toy.TotalPages(), 512u);
  // TestGeometry() is the compatibility alias older tests use.
  EXPECT_EQ(TestGeometry().TotalPages(), toy.TotalPages());
}

TEST(GeometryPresetTest, SeedIsTheDefaultShape) {
  Geometry seed = Geometry::Seed();
  EXPECT_EQ(seed.channels, Geometry{}.channels);
  EXPECT_EQ(seed.TotalPages(), Geometry{}.TotalPages());
  EXPECT_TRUE(ValidateGeometry(seed).ok());
}

TEST(GeometryPresetTest, PaperScaleIs512GiBEightByEight) {
  Geometry g = Geometry::PaperScale();
  EXPECT_EQ(g.channels, 8u);
  EXPECT_EQ(g.ways, 8u);
  EXPECT_EQ(g.TotalChips(), 64u);
  EXPECT_EQ(g.page_size, 4096u);
  EXPECT_EQ(g.TotalPages(), 134'217'728u);
  EXPECT_EQ(g.CapacityBytes(), 512ull * 1024 * 1024 * 1024);
  EXPECT_TRUE(ValidateGeometry(g).ok());
}

TEST(GeometryValidationTest, RejectsZeroDimensions) {
  Geometry g = Geometry::Toy();
  g.pages_per_block = 0;
  GeometryError err = ValidateGeometry(g);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.issue, GeometryIssue::kZeroDimension);
  EXPECT_STREQ(ToString(err.issue), "zero-dimension");
}

TEST(GeometryValidationTest, RejectsPpaSpaceBeyond2To63) {
  // 65536 chips x 2^21 blocks x 2^21 pages = 2^16 * 2^42 = 2^58... push all
  // dimensions to their u32 limits instead: 2^32 chips alone overflows.
  Geometry g;
  g.channels = 65536;
  g.ways = 65536;               // 2^32 chips
  g.blocks_per_chip = 1 << 16;  // 2^48 blocks
  g.pages_per_block = 1 << 16;  // 2^64 pages
  GeometryError err = ValidateGeometry(g);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.issue, GeometryIssue::kPpaSpaceOverflow);
}

TEST(GeometryValidationTest, RejectsBlockIdsBeyond32Bits) {
  // 2^16 chips x 2^17 blocks = 2^33 blocks: PPA space fine (2^36 pages with
  // 8 pages/block) but global block ids no longer fit uint32_t.
  Geometry g;
  g.channels = 256;
  g.ways = 256;
  g.blocks_per_chip = 1 << 17;
  g.pages_per_block = 8;
  GeometryError err = ValidateGeometry(g);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.issue, GeometryIssue::kBlockIdOverflow);
}

TEST(GeometryValidationTest, RejectsCapacityByteOverflow) {
  // 2^54 pages (fits PPA space and block-id checks: 2^31 blocks) but
  // 2^54 * 2^12 bytes = 2^66 overflows CapacityBytes().
  Geometry g;
  g.channels = 16;
  g.ways = 8;                   // 2^7 chips
  g.blocks_per_chip = 1 << 24;  // 2^31 blocks
  g.pages_per_block = 1 << 23;  // 2^54 pages
  g.page_size = 4096;
  GeometryError err = ValidateGeometry(g);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.issue, GeometryIssue::kCapacityOverflow);
}

TEST(GeometryScaleTest, DenseStructuredRoundTripAtPaperScaleEdges) {
  Geometry g = Geometry::PaperScale();
  const std::uint32_t last_chip = g.TotalChips() - 1;
  const std::uint32_t last_block = g.blocks_per_chip - 1;
  const std::uint32_t last_page = g.pages_per_block - 1;
  struct Case {
    std::uint32_t chip, block, page;
  };
  const Case cases[] = {
      {0, 0, 0},
      {0, 0, last_page},
      {0, last_block, last_page},
      {last_chip, 0, 0},
      {last_chip, last_block, last_page},
      {last_chip / 2, last_block / 2, last_page / 2},
  };
  for (const Case& c : cases) {
    Ppa ppa = g.MakePpa(c.chip, c.block, c.page);
    EXPECT_TRUE(g.ValidPpa(ppa));
    EXPECT_EQ(g.ChipOf(ppa), c.chip);
    EXPECT_EQ(g.BlockOf(ppa), c.block);
    EXPECT_EQ(g.PageOf(ppa), c.page);
  }
  // The last page of the device is exactly TotalPages() - 1: the dense
  // encoding is a bijection onto [0, TotalPages).
  EXPECT_EQ(g.MakePpa(last_chip, last_block, last_page), g.TotalPages() - 1);
  EXPECT_FALSE(g.ValidPpa(g.TotalPages()));
}

TEST(GeometryScaleTest, DenseStructuredRoundTripRandomSample) {
  Geometry g = Geometry::PaperScale();
  Rng rng(0x9e0'5ca1e);
  for (int i = 0; i < 10'000; ++i) {
    std::uint32_t chip =
        static_cast<std::uint32_t>(rng.Below(g.TotalChips()));
    std::uint32_t block =
        static_cast<std::uint32_t>(rng.Below(g.blocks_per_chip));
    std::uint32_t page =
        static_cast<std::uint32_t>(rng.Below(g.pages_per_block));
    Ppa ppa = g.MakePpa(chip, block, page);
    ASSERT_EQ(g.BlockAddrOf(ppa), (BlockAddr{chip, block}));
    ASSERT_EQ(g.PageOf(ppa), page);
    ASSERT_LT(g.ChannelOfChip(chip), g.channels);
  }
}

}  // namespace
}  // namespace insider::nand
