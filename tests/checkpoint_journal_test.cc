// Checkpoint + write-ahead mapping journal (DESIGN.md §13): the O(Δ)
// power-loss rebuild. Unit layer pins the metadata substrate (torn-flush
// detection, double-buffered commits, region overflow); FTL layer proves the
// fast path — locate checkpoint, replay journal tail, OOB-scan only the
// delta — rebuilds byte-equal state and falls back to the full scan whenever
// the metadata is torn, missing, or overflowed; host layer wires the
// periodic checkpoint task, the crash windows *inside* metadata flushes, and
// the detector-state-loss report.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "ftl/checkpoint.h"
#include "ftl/mapping_journal.h"
#include "ftl/page_ftl.h"
#include "host/power_loss.h"
#include "host/ssd.h"
#include "nand/geometry.h"
#include "obs/metrics.h"

namespace insider {
namespace {

nand::PageData Page(std::uint64_t stamp) {
  nand::PageData d;
  d.stamp = stamp;
  return d;
}

ftl::FtlConfig CheckpointedFtl() {
  ftl::FtlConfig c;
  c.geometry = nand::TestGeometry();  // 4 chips, 16 blocks/chip, 8 pp/b
  c.latency = nand::LatencyModel::Zero();
  c.exported_fraction = 0.5;
  c.checkpoint.enabled = true;
  return c;
}

// ---------------------------------------------------------------------------
// Unit layer: MappingJournal against a raw array.

class JournalUnitTest : public ::testing::Test {
 protected:
  JournalUnitTest()
      : nand_(nand::TestGeometry(), nand::LatencyModel::Zero()) {
    // Two one-block regions at the top of chip 0 — enough to overflow on
    // purpose with one record per page.
    nand_.SetMetadataBlocks({14, 15});
    journal_ = ftl::MappingJournal(&nand_, {14}, {15},
                                   /*records_per_page=*/1);
  }

  static ftl::JournalRecord Map(Lba lba, nand::Ppa ppa) {
    return {ftl::JournalOpKind::kMap, false, lba, ppa, nand::kInvalidPpa,
            1,    0,                        0};
  }

  nand::FlashArray nand_;
  ftl::MappingJournal journal_;
};

TEST_F(JournalUnitTest, FlushedRecordsComeBackInOrder) {
  ftl::FtlStats stats;
  for (Lba lba = 0; lba < 5; ++lba) journal_.Append(Map(lba, 100 + lba));
  SimTime complete = 0;
  ASSERT_TRUE(journal_.Flush(0, &complete, &stats));
  EXPECT_EQ(stats.journal_pages_flushed, 5u);
  EXPECT_EQ(journal_.PendingCount(), 0u);

  ftl::MappingJournal::Tail tail = journal_.ValidTail(journal_.ActiveEpoch());
  ASSERT_EQ(tail.records.size(), 5u);
  for (Lba lba = 0; lba < 5; ++lba) {
    EXPECT_EQ(tail.records[lba].lba, lba);
    EXPECT_EQ(tail.records[lba].ppa, 100 + lba);
  }
  EXPECT_FALSE(tail.region_full);
  EXPECT_GT(tail.pages_read, 0u);
}

TEST_F(JournalUnitTest, TornFlushTruncatesTheReplayableTail) {
  ftl::FtlStats stats;
  SimTime complete = 0;
  journal_.Append(Map(0, 100));
  journal_.Append(Map(1, 101));
  ASSERT_TRUE(journal_.Flush(0, &complete, &stats));

  // Power dies before the 3rd page's program: the flush reports failure and
  // the tail stays truncated at the durable prefix.
  nand_.SetPowerCutProbe([](const char* point) {
    return std::strcmp(point, "journal.flush") == 0;
  });
  journal_.Append(Map(2, 102));
  EXPECT_FALSE(journal_.Flush(0, &complete, &stats));
  nand_.SetPowerCutProbe(nullptr);

  ftl::MappingJournal::Tail tail = journal_.ValidTail(journal_.ActiveEpoch());
  EXPECT_EQ(tail.records.size(), 2u);
}

TEST_F(JournalUnitTest, RegionOverflowIsReportedAndForcesFallback) {
  ftl::FtlStats stats;
  SimTime complete = 0;
  // One record per page, one 8-page block per region: the 9th flush cannot
  // land.
  for (int i = 0; i < 8; ++i) {
    journal_.Append(Map(static_cast<Lba>(i), static_cast<nand::Ppa>(100 + i)));
    ASSERT_TRUE(journal_.Flush(0, &complete, &stats)) << i;
  }
  journal_.Append(Map(8, 108));
  EXPECT_FALSE(journal_.Flush(0, &complete, &stats));
  EXPECT_EQ(stats.journal_overflows, 1u);

  ftl::MappingJournal::Tail tail = journal_.ValidTail(journal_.ActiveEpoch());
  EXPECT_TRUE(tail.region_full);
  EXPECT_EQ(tail.records.size(), 8u);
}

TEST_F(JournalUnitTest, StartEpochSwitchesRegionAndDropsCoveredRecords) {
  ftl::FtlStats stats;
  SimTime complete = 0;
  journal_.Append(Map(0, 100));
  ASSERT_TRUE(journal_.Flush(0, &complete, &stats));
  journal_.Append(Map(1, 101));  // still pending — superseded below

  journal_.StartEpoch(1, 0, &complete);
  EXPECT_EQ(journal_.ActiveEpoch(), 1u);
  EXPECT_EQ(journal_.PendingCount(), 0u);
  EXPECT_EQ(journal_.UsedPages(), 0u);
  EXPECT_TRUE(journal_.ValidTail(1).records.empty());
}

// ---------------------------------------------------------------------------
// FTL layer: the O(Δ) fast path and its fallbacks.

TEST(CheckpointRebuildTest, FastPathRebuildsExactStateFromDelta) {
  ftl::PageFtl crashed(CheckpointedFtl());
  ftl::PageFtl twin(CheckpointedFtl());
  const Lba n = crashed.ExportedLbas();
  ASSERT_GT(n, 120u);
  EXPECT_EQ(crashed.MetadataBlockCount(), 8u);

  auto both_write = [&](Lba lba, std::uint64_t stamp, SimTime t) {
    ASSERT_TRUE(crashed.WritePage(lba, Page(stamp), t).ok());
    ASSERT_TRUE(twin.WritePage(lba, Page(stamp), t).ok());
  };

  for (Lba lba = 0; lba < 100; ++lba) both_write(lba, 1000 + lba, Seconds(1));
  crashed.ReleaseExpired(Seconds(15));
  twin.ReleaseExpired(Seconds(15));
  crashed.TakeCheckpoint(Seconds(16));
  twin.TakeCheckpoint(Seconds(16));
  ASSERT_EQ(crashed.Stats().checkpoints_taken, 1u);

  // Post-checkpoint delta: overwrites (journaled + partly un-flushed) and
  // trims. The rebuild must get all of it back without a full scan.
  for (Lba lba = 0; lba < 30; ++lba) both_write(lba, 2000 + lba, Seconds(20));
  for (Lba lba = 40; lba < 45; ++lba) {
    ASSERT_TRUE(crashed.TrimPage(lba, Seconds(21)).ok());
    ASSERT_TRUE(twin.TrimPage(lba, Seconds(21)).ok());
  }

  ftl::PageFtl::RebuildReport report = crashed.RebuildFromNand(Seconds(22));
  EXPECT_TRUE(report.used_checkpoint);
  EXPECT_FALSE(report.fallback_full_scan);
  EXPECT_EQ(crashed.Stats().rebuild_fast_path, 1u);
  EXPECT_EQ(crashed.Stats().rebuild_fallbacks, 0u);
  EXPECT_GT(report.checkpoint_pages_read, 0u);
  EXPECT_EQ(report.pages_scanned, 0u);  // never walked the whole device
  EXPECT_EQ(crashed.CheckInvariants(), "");

  for (Lba lba = 0; lba < n; ++lba) {
    ftl::FtlResult a = crashed.ReadPage(lba, Seconds(23));
    ftl::FtlResult b = twin.ReadPage(lba, Seconds(23));
    ASSERT_EQ(a.status, b.status) << lba;
    if (a.ok()) {
      EXPECT_EQ(a.data.stamp, b.data.stamp) << lba;
    }
  }
  EXPECT_EQ(crashed.RecoveryQueueSize(), twin.RecoveryQueueSize());
  EXPECT_EQ(crashed.TrimJournalSize(), twin.TrimJournalSize());

  // The rebuilt queue still honors the recovery promise.
  crashed.SetReadOnly(true);
  twin.SetReadOnly(true);
  crashed.RollBack(Seconds(25));
  twin.RollBack(Seconds(25));
  for (Lba lba = 0; lba < n; ++lba) {
    ftl::FtlResult a = crashed.ReadPage(lba, Seconds(26));
    ftl::FtlResult b = twin.ReadPage(lba, Seconds(26));
    ASSERT_EQ(a.status, b.status) << lba;
    if (a.ok()) {
      EXPECT_EQ(a.data.stamp, b.data.stamp) << lba;
    }
  }
}

TEST(CheckpointRebuildTest, FastPathReadsAreProportionalToTheDelta) {
  ftl::PageFtl ftl(CheckpointedFtl());
  const Lba n = ftl.ExportedLbas();
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(lba), Seconds(1)).ok());
  }
  ftl.ReleaseExpired(Seconds(15));
  ftl.TakeCheckpoint(Seconds(16));
  for (Lba lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(5000 + lba), Seconds(20)).ok());
  }

  ftl::PageFtl::RebuildReport fast = ftl.RebuildFromNand(Seconds(21));
  ASSERT_TRUE(fast.used_checkpoint);
  std::size_t fast_reads = fast.checkpoint_pages_read +
                           fast.journal_pages_read + fast.delta_pages_scanned;

  // A device without checkpoints rebuilds the same state by visiting every
  // programmed page. The fast path must read a small fraction of that.
  ftl::FtlConfig plain_cfg = CheckpointedFtl();
  plain_cfg.checkpoint.enabled = false;
  ftl::PageFtl plain(plain_cfg);
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(plain.WritePage(lba, Page(lba), Seconds(1)).ok());
  }
  plain.ReleaseExpired(Seconds(15));
  for (Lba lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(plain.WritePage(lba, Page(5000 + lba), Seconds(20)).ok());
  }
  ftl::PageFtl::RebuildReport full = plain.RebuildFromNand(Seconds(21));
  ASSERT_GT(full.pages_scanned, 0u);
  EXPECT_LT(fast_reads, full.pages_scanned / 4)
      << "O(Δ) path read almost as much as the full scan";
}

TEST(CheckpointRebuildTest, TornFirstCheckpointFallsBackToFullScan) {
  ftl::PageFtl crashed(CheckpointedFtl());
  ftl::PageFtl twin(CheckpointedFtl());
  for (Lba lba = 0; lba < 60; ++lba) {
    ASSERT_TRUE(crashed.WritePage(lba, Page(700 + lba), Seconds(1)).ok());
    ASSERT_TRUE(twin.WritePage(lba, Page(700 + lba), Seconds(1)).ok());
  }

  // Power dies inside the only checkpoint commit ever attempted: no valid
  // checkpoint exists, so the rebuild must take the exhaustive scan — and
  // still land on the exact same state.
  crashed.Nand().SetPowerCutProbe([](const char* point) {
    return std::strcmp(point, "checkpoint.flush") == 0;
  });
  crashed.TakeCheckpoint(Seconds(2));
  crashed.Nand().SetPowerCutProbe(nullptr);
  ASSERT_EQ(crashed.Stats().checkpoints_taken, 0u);
  ASSERT_EQ(crashed.Stats().checkpoint_aborts, 1u);

  ftl::PageFtl::RebuildReport report = crashed.RebuildFromNand(Seconds(3));
  EXPECT_FALSE(report.used_checkpoint);
  EXPECT_TRUE(report.fallback_full_scan);
  EXPECT_EQ(crashed.Stats().rebuild_fallbacks, 1u);
  EXPECT_GT(report.pages_scanned, 0u);
  EXPECT_EQ(crashed.CheckInvariants(), "");
  for (Lba lba = 0; lba < 60; ++lba) {
    ftl::FtlResult a = crashed.ReadPage(lba, Seconds(4));
    ftl::FtlResult b = twin.ReadPage(lba, Seconds(4));
    ASSERT_EQ(a.status, b.status) << lba;
    if (a.ok()) {
      EXPECT_EQ(a.data.stamp, b.data.stamp) << lba;
    }
  }
}

TEST(CheckpointRebuildTest, TornLaterCommitKeepsPreviousCheckpointAuthoritative) {
  ftl::PageFtl crashed(CheckpointedFtl());
  ftl::PageFtl twin(CheckpointedFtl());
  auto both_write = [&](Lba lba, std::uint64_t stamp, SimTime t) {
    ASSERT_TRUE(crashed.WritePage(lba, Page(stamp), t).ok());
    ASSERT_TRUE(twin.WritePage(lba, Page(stamp), t).ok());
  };
  for (Lba lba = 0; lba < 80; ++lba) both_write(lba, 300 + lba, Seconds(1));
  crashed.TakeCheckpoint(Seconds(2));
  twin.TakeCheckpoint(Seconds(2));
  for (Lba lba = 0; lba < 20; ++lba) both_write(lba, 8000 + lba, Seconds(3));

  // Epoch-2 commit tears mid-flush. Epoch 1 plus its journal tail still
  // covers everything, so the rebuild stays on the fast path.
  crashed.Nand().SetPowerCutProbe([](const char* point) {
    return std::strcmp(point, "checkpoint.flush") == 0;
  });
  crashed.TakeCheckpoint(Seconds(4));
  crashed.Nand().SetPowerCutProbe(nullptr);
  ASSERT_EQ(crashed.Stats().checkpoint_aborts, 1u);

  ftl::PageFtl::RebuildReport report = crashed.RebuildFromNand(Seconds(5));
  EXPECT_TRUE(report.used_checkpoint);
  EXPECT_EQ(crashed.CheckInvariants(), "");
  for (Lba lba = 0; lba < 80; ++lba) {
    ftl::FtlResult a = crashed.ReadPage(lba, Seconds(6));
    ftl::FtlResult b = twin.ReadPage(lba, Seconds(6));
    ASSERT_EQ(a.status, b.status) << lba;
    if (a.ok()) {
      EXPECT_EQ(a.data.stamp, b.data.stamp) << lba;
    }
  }
}

TEST(CheckpointRebuildTest, MetadataProgramFaultAbortsCommitDeviceKeepsGoing) {
  ftl::FtlConfig cfg = CheckpointedFtl();
  cfg.fault_plan.FailMetaProgramAtOp(1);  // first checkpoint header burns
  ftl::PageFtl ftl(cfg);
  for (Lba lba = 0; lba < 40; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(lba), Seconds(1)).ok());
  }
  ftl.TakeCheckpoint(Seconds(2));
  EXPECT_EQ(ftl.Stats().checkpoints_taken, 0u);
  EXPECT_EQ(ftl.Stats().checkpoint_aborts, 1u);
  EXPECT_EQ(ftl.Nand().Counters().meta_program_fails, 1u);

  // The burned metadata page perturbed nothing on the data path; the next
  // interval's retry commits into the other buffer and the fast path works.
  ftl.TakeCheckpoint(Seconds(3));
  EXPECT_EQ(ftl.Stats().checkpoints_taken, 1u);
  ftl::PageFtl::RebuildReport report = ftl.RebuildFromNand(Seconds(4));
  EXPECT_TRUE(report.used_checkpoint);
  EXPECT_EQ(ftl.CheckInvariants(), "");
  for (Lba lba = 0; lba < 40; ++lba) {
    EXPECT_EQ(ftl.ReadPage(lba, Seconds(5)).data.stamp, lba) << lba;
  }
}

TEST(CheckpointRebuildTest, GcErasesInsideTheDeltaReplayViaEraseIntents) {
  // Heavy overwrite churn on a small device forces foreground GC — erases,
  // relocations, retained-page moves — all after the last checkpoint. The
  // erase-intent protocol must keep the journal consistent with media so the
  // fast path survives (an un-journaled erase would strand the delta scan).
  ftl::PageFtl crashed(CheckpointedFtl());
  ftl::PageFtl twin(CheckpointedFtl());
  const Lba n = crashed.ExportedLbas();
  auto both_write = [&](Lba lba, std::uint64_t stamp, SimTime t) {
    ASSERT_TRUE(crashed.WritePage(lba, Page(stamp), t).ok());
    ASSERT_TRUE(twin.WritePage(lba, Page(stamp), t).ok());
  };

  for (Lba lba = 0; lba < n; ++lba) both_write(lba, lba, Seconds(1));
  crashed.ReleaseExpired(Seconds(15));
  twin.ReleaseExpired(Seconds(15));
  crashed.TakeCheckpoint(Seconds(16));
  twin.TakeCheckpoint(Seconds(16));

  // Churn: several full overwrite passes, each aged out so GC can reclaim.
  std::uint64_t stamp = 10'000;
  SimTime t = Seconds(20);
  for (int pass = 0; pass < 4; ++pass) {
    for (Lba lba = 0; lba < n; ++lba) both_write(lba, stamp++, t);
    t += Seconds(15);
    crashed.ReleaseExpired(t);
    twin.ReleaseExpired(t);
  }
  ASSERT_GT(crashed.Stats().gc_erases, 0u);

  ftl::PageFtl::RebuildReport report = crashed.RebuildFromNand(t);
  EXPECT_EQ(crashed.CheckInvariants(), "");
  // Churn may legitimately trigger pre-emptive checkpoints (journal-region
  // pressure); wherever the horizon landed, the rebuild must be exact.
  EXPECT_TRUE(report.used_checkpoint || report.fallback_full_scan);
  for (Lba lba = 0; lba < n; ++lba) {
    ftl::FtlResult a = crashed.ReadPage(lba, t + Seconds(1));
    ftl::FtlResult b = twin.ReadPage(lba, t + Seconds(1));
    ASSERT_EQ(a.status, b.status) << lba;
    if (a.ok()) {
      EXPECT_EQ(a.data.stamp, b.data.stamp) << lba;
    }
  }
}

TEST(CheckpointRebuildTest, DedupedVersionStoreSurvivesCrashExactly) {
  // PR-6 limitation, now fixed: cross-page dedupe used to be a documented
  // crash-exactness gap (the full rescan rebuilds duplicate-free chains).
  // The checkpoint restores the store index — refcounts, shared objects —
  // and the journal replays post-checkpoint archives, so a crashed device
  // matches its uncrashed twin even WITH dedupe hits.
  auto table = std::make_shared<version::RangePolicyTable>();
  ASSERT_TRUE(table->Add({0, 64, /*keep_versions=*/8,
                          /*keep_window=*/Seconds(120)}));
  ftl::FtlConfig cfg = CheckpointedFtl();
  cfg.range_policies = table;
  ftl::PageFtl crashed(cfg);
  ftl::PageFtl twin(cfg);
  auto both_write = [&](Lba lba, std::uint64_t stamp, SimTime t) {
    ASSERT_TRUE(crashed.WritePage(lba, Page(stamp), t).ok());
    ASSERT_TRUE(twin.WritePage(lba, Page(stamp), t).ok());
  };

  // Identical payloads on many protected LBAs: archiving them dedupes to
  // shared objects (stamp + bytes equal => same content hash).
  for (Lba lba = 0; lba < 32; ++lba) both_write(lba, 42, Seconds(1));
  for (Lba lba = 0; lba < 32; ++lba) both_write(lba, 43, Seconds(2));
  crashed.ReleaseExpired(Seconds(15));
  twin.ReleaseExpired(Seconds(15));
  ASSERT_GT(crashed.Stats().archive_dedupe_hits, 0u);
  ASSERT_EQ(crashed.Stats().archive_dedupe_hits,
            twin.Stats().archive_dedupe_hits);
  crashed.TakeCheckpoint(Seconds(16));
  twin.TakeCheckpoint(Seconds(16));

  // More dedupable overwrites after the checkpoint: journal replay re-runs
  // the release pass, reproducing these archive decisions too.
  for (Lba lba = 0; lba < 32; ++lba) both_write(lba, 44, Seconds(20));
  crashed.ReleaseExpired(Seconds(35));
  twin.ReleaseExpired(Seconds(35));

  ftl::PageFtl::RebuildReport report = crashed.RebuildFromNand(Seconds(36));
  ASSERT_TRUE(report.used_checkpoint)
      << "dedupe exactness is a fast-path guarantee";
  EXPECT_EQ(crashed.CheckInvariants(), "");  // V2 pins refcounts vs chains
  EXPECT_EQ(crashed.Store().VersionCount(), twin.Store().VersionCount());
  EXPECT_EQ(crashed.Store().ObjectCount(), twin.Store().ObjectCount());

  ftl::RangeRollbackReport ra =
      crashed.RollBackRange(0, 64, Seconds(1), Seconds(40));
  ftl::RangeRollbackReport rb =
      twin.RollBackRange(0, 64, Seconds(1), Seconds(40));
  EXPECT_EQ(ra.restored, rb.restored);
  EXPECT_EQ(ra.failed, 0u);
  for (Lba lba = 0; lba < 64; ++lba) {
    ftl::FtlResult a = crashed.ReadPage(lba, Seconds(41));
    ftl::FtlResult b = twin.ReadPage(lba, Seconds(41));
    ASSERT_EQ(a.status, b.status) << lba;
    if (a.ok()) {
      EXPECT_EQ(a.data.stamp, b.data.stamp) << lba;
    }
  }
}

// ---------------------------------------------------------------------------
// Host layer: firmware task, crash windows, detector-state loss.

host::SsdConfig CheckpointedSsd() {
  host::SsdConfig c;
  c.ftl.geometry = nand::TestGeometry();
  c.ftl.latency = nand::LatencyModel::Zero();
  c.ftl.checkpoint.enabled = true;
  c.detector.slice_length = Seconds(1);
  c.detector.window_slices = 10;
  c.detector.score_threshold = 3;
  return c;
}

core::DecisionTree SimpleTree() {
  std::vector<core::DecisionTree::Node> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = core::FeatureId::kOwIo;
  nodes[0].threshold = 30.0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].is_leaf = true;
  nodes[1].label = false;
  nodes[2].is_leaf = true;
  nodes[2].label = true;
  return core::DecisionTree(std::move(nodes));
}

TEST(SsdCheckpointTest, PeriodicFirmwareTaskCommitsOnTheInterval) {
  host::Ssd ssd(CheckpointedSsd(), SimpleTree());
  for (Lba lba = 0; lba < 32; ++lba) {
    ASSERT_TRUE(ssd.WriteBlockAt(lba, Page(lba), Seconds(1)).ok());
  }
  ssd.IdleUntil(Seconds(12));  // interval is 5 s: two commits due
  EXPECT_GE(ssd.Ftl().Stats().checkpoints_taken, 2u);
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
}

TEST(SsdCheckpointTest, PowerCycleReportsDetectorStateLoss) {
  host::Ssd ssd(CheckpointedSsd(), SimpleTree());
  obs::MetricsRegistry metrics;
  ssd.AttachObs(nullptr, &metrics);
  for (Lba lba = 0; lba < 16; ++lba) {
    ASSERT_TRUE(ssd.WriteBlockAt(lba, Page(lba), Seconds(1)).ok());
  }
  ftl::PageFtl::RebuildReport report = ssd.PowerCycle(Seconds(2), Seconds(3));
  EXPECT_TRUE(report.detector_state_lost);
  EXPECT_EQ(metrics.GetCounter("ssd.detector_state_loss").Value(), 1u);

  // A conventional-baseline device (detector off) has no state to lose.
  host::SsdConfig plain_cfg = CheckpointedSsd();
  plain_cfg.detector_enabled = false;
  host::Ssd plain(plain_cfg, SimpleTree());
  ASSERT_TRUE(plain.WriteBlockAt(0, Page(1), Seconds(1)).ok());
  EXPECT_FALSE(plain.PowerCycle(Seconds(2), Seconds(3)).detector_state_lost);
}

class InjectorWindowTest
    : public ::testing::TestWithParam<host::PowerLossConfig::CrashWindow> {};

TEST_P(InjectorWindowTest, CrashInsideMetadataFlushStillRollsBack) {
  host::Ssd ssd(CheckpointedSsd(), SimpleTree());
  std::vector<IoRequest> trace;
  for (Lba lba = 0; lba < 64; ++lba) {
    trace.push_back(
        {Seconds(1) + CostOf(lba, 1000), lba, 1, IoMode::kWrite});
  }
  for (int s = 0; s < 6; ++s) {
    SimTime t = Seconds(21 + s);
    trace.push_back({t, 0, 40, IoMode::kRead});
    trace.push_back({t + 1000, 0, 40, IoMode::kWrite});
  }

  host::PowerLossConfig plc;
  plc.crash_times = {Seconds(20)};
  plc.window = GetParam();
  host::PowerLossInjector injector(ssd, plc);
  host::PowerLossReport report = injector.Replay(trace, /*stamp_base=*/0);
  ASSERT_EQ(report.crashes, 1u);
  // (Late attack writes may bounce off the read-only latch once the alarm
  // fires mid-trace; that is the defense working, not a request error bug.)

  ssd.IdleUntil(ssd.Clock().Now() + Seconds(2));
  ASSERT_TRUE(ssd.AlarmActive());
  ssd.RollBackNow();
  for (Lba lba = 0; lba < 40; ++lba) {
    ftl::FtlResult r = ssd.Ftl().ReadPage(lba, ssd.Clock().Now());
    ASSERT_TRUE(r.ok()) << lba;
    EXPECT_EQ(r.data.stamp, 65536u * lba) << lba;
  }
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(
    Windows, InjectorWindowTest,
    ::testing::Values(host::PowerLossConfig::CrashWindow::kRequestBoundary,
                      host::PowerLossConfig::CrashWindow::kTearCheckpoint,
                      host::PowerLossConfig::CrashWindow::kTearJournal));

}  // namespace
}  // namespace insider
