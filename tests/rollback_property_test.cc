// Model-based property test of the paper's central recovery claim: after an
// attack burst confined to the retention window, RollBack() restores the
// device to *exactly* the logical state it had at `detect_time - window` —
// every mapping, every stamp, including deletions.
//
// A reference model tracks, per LBA, the full history of writes and trims;
// the expected post-rollback state is the model evaluated at the horizon.
// Preconditions for exactness (all asserted): no backups forced out by
// space pressure, no queue-capacity evictions, and the burst shorter than
// the retention window (so no backup expires before the alarm).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ftl/page_ftl.h"
#include "nand/geometry.h"

namespace insider::ftl {
namespace {

struct ModelState {
  std::vector<std::int64_t> stamp;  ///< -1 = unmapped
  explicit ModelState(Lba n) : stamp(n, -1) {}
};

class RollbackPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RollbackPropertyTest, RollbackEqualsModelAtHorizon) {
  Rng rng(GetParam() * 7919 + 3);
  FtlConfig cfg;
  cfg.geometry = nand::TestGeometry();  // 512 physical pages
  cfg.latency = nand::LatencyModel::Zero();
  cfg.exported_fraction = 0.5;          // 256 LBAs, generous OP
  PageFtl ftl(cfg);
  Lba n = ftl.ExportedLbas();

  ModelState base(n);

  // --- Phase 1: arbitrary history, old enough to be fully released. ----
  SimTime t = 0;
  for (int op = 0; op < 400; ++op) {
    t += rng.BelowTime(10'000);
    Lba lba = rng.Below(n);
    if (rng.Chance(0.75)) {
      ASSERT_TRUE(
          ftl.WritePage(lba, {static_cast<std::uint64_t>(1000 + op), {}}, t)
              .ok());
      base.stamp[lba] = 1000 + op;
    } else if (base.stamp[lba] >= 0) {
      ASSERT_TRUE(ftl.TrimPage(lba, t).ok());
      base.stamp[lba] = -1;
    }
  }
  ASSERT_LT(t, Seconds(5));

  // Let every phase-1 backup expire.
  SimTime attack_begin = Seconds(30);
  ftl.ReleaseExpired(attack_begin);
  ASSERT_EQ(ftl.RecoveryQueueSize(), 0u);

  // --- Phase 2: the attack burst, confined to [30 s, 36 s]. ------------
  //
  // The expected post-rollback state per LBA is the value *before the
  // burst's first backup-creating operation* on it. A write to an unmapped
  // LBA creates no backup (there is no old version), so — exactly as in
  // the paper's design — such a write is not revertible until a later
  // overwrite/trim records it. `bottom` tracks that chain bottom.
  ModelState infected = base;
  ModelState bottom = base;
  std::vector<bool> has_backup(n, false);
  SimTime bt = attack_begin;
  for (int op = 0; op < 150; ++op) {
    bt += rng.BelowTime(40'000);  // burst spans < 6 s << 10 s window
    Lba lba = rng.Below(n);
    if (rng.Chance(0.8)) {
      ASSERT_TRUE(
          ftl.WritePage(lba, {static_cast<std::uint64_t>(900000 + op), {}},
                        bt)
              .ok());
      if (!has_backup[lba]) {
        if (infected.stamp[lba] >= 0) {
          bottom.stamp[lba] = infected.stamp[lba];
          has_backup[lba] = true;
        } else {
          bottom.stamp[lba] = 900000 + op;  // unrevertible fresh write
        }
      }
      infected.stamp[lba] = 900000 + op;
    } else if (infected.stamp[lba] >= 0) {
      ASSERT_TRUE(ftl.TrimPage(lba, bt).ok());
      if (!has_backup[lba]) {
        bottom.stamp[lba] = infected.stamp[lba];
        has_backup[lba] = true;
      }
      infected.stamp[lba] = -1;
    }
  }
  ASSERT_LT(bt, attack_begin + Seconds(10));
  ASSERT_EQ(ftl.Stats().forced_releases, 0u)
      << "space pressure would make recovery lossy; shrink the burst";
  ASSERT_EQ(ftl.Stats().queue_evictions, 0u);

  // Sanity: pre-rollback state matches the infected model.
  for (Lba lba = 0; lba < n; ++lba) {
    FtlResult r = ftl.ReadPage(lba, bt);
    if (infected.stamp[lba] < 0) {
      ASSERT_EQ(r.status, FtlStatus::kUnmapped) << "lba " << lba;
    } else {
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r.data.stamp,
                static_cast<std::uint64_t>(infected.stamp[lba]));
    }
  }

  // --- Rollback to detect_time such that the horizon predates the burst.
  SimTime detect = attack_begin + Seconds(8);  // horizon = 28 s < burst
  RollbackReport report = ftl.RollBack(detect);
  EXPECT_GT(report.entries_reverted, 0u);
  EXPECT_EQ(ftl.CheckInvariants(), "");

  // --- The device must now equal the chain-bottom model, exactly. ------
  for (Lba lba = 0; lba < n; ++lba) {
    FtlResult r = ftl.ReadPage(lba, detect);
    if (bottom.stamp[lba] < 0) {
      EXPECT_EQ(r.status, FtlStatus::kUnmapped)
          << "lba " << lba << " should be unmapped after rollback";
    } else {
      ASSERT_TRUE(r.ok()) << "lba " << lba;
      EXPECT_EQ(r.data.stamp, static_cast<std::uint64_t>(bottom.stamp[lba]))
          << "lba " << lba;
    }
  }
  // Every LBA that was mapped before the burst is byte-identical to its
  // pre-attack version (the paper's 0%-data-loss claim).
  for (Lba lba = 0; lba < n; ++lba) {
    if (base.stamp[lba] < 0) continue;
    EXPECT_EQ(bottom.stamp[lba], base.stamp[lba]) << "model self-check";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollbackPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Device-fault robustness: the recovery promise must hold on degraded
// hardware. Each seed drives two devices through an identical history —
// device A on ideal media, device B with random program/erase faults and a
// power cut (RebuildFromNand) at a random point inside the attack burst.
// After both roll back, their logical states must be byte-equivalent: media
// faults are absorbed by write re-drive + block retirement, and the crash by
// the OOB rebuild of the mapping table and recovery queue.
//
// Trims inside the burst are replayed across the crash by their tombstone
// pages (FtlConfig::trim_tombstones): a trim that is the *final* state of an
// LBA at the power cut stays trimmed after the rebuild, which the
// pre-rollback equality check below verifies directly. Phase 1 stays
// write-only because the tombstone guarantee is scoped to the retention
// window — once a trim ages out, its tombstone is reclaimable garbage, and
// a crash after GC collects the tombstone but before it collects the stale
// data would resurrect the mapping.
class FaultPowerLossPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultPowerLossPropertyTest, RollbackAfterFaultsAndCrashMatchesBaseline) {
  Rng rng(GetParam() * 104729 + 17);

  FtlConfig clean_cfg;
  clean_cfg.geometry = nand::TestGeometry();  // 512 physical pages
  clean_cfg.latency = nand::LatencyModel::Zero();
  clean_cfg.exported_fraction = 0.5;  // 256 LBAs

  FtlConfig faulty_cfg = clean_cfg;
  faulty_cfg.errors.program_fail_prob = 5e-3;
  faulty_cfg.errors.erase_fail_prob = 2e-3;
  faulty_cfg.error_seed = GetParam();

  PageFtl clean(clean_cfg);
  PageFtl faulty(faulty_cfg);
  Lba n = clean.ExportedLbas();

  // Pre-generate the shared op sequence so device state never influences it.
  struct Op {
    SimTime t = 0;
    Lba lba = 0;
    bool is_write = true;
    std::uint64_t stamp = 0;
  };
  std::vector<Op> history;
  std::vector<bool> mapped(n, false);

  // Phase 1: write-only background history, done well before the window.
  SimTime t = 0;
  for (int op = 0; op < 300; ++op) {
    t += rng.BelowTime(9'000);
    Lba lba = rng.Below(n);
    history.push_back({t, lba, true, static_cast<std::uint64_t>(1000 + op)});
    mapped[lba] = true;
  }
  ASSERT_LT(t, Seconds(3));

  // Phase 2: attack burst confined to [30 s, 36 s), writes + trims.
  SimTime attack_begin = Seconds(30);
  SimTime bt = attack_begin;
  std::size_t burst_start = history.size();
  for (int op = 0; op < 150; ++op) {
    bt += rng.BelowTime(40'000);
    Lba lba = rng.Below(n);
    if (rng.Chance(0.8) || !mapped[lba]) {
      history.push_back(
          {bt, lba, true, static_cast<std::uint64_t>(900000 + op)});
      mapped[lba] = true;
    } else {
      history.push_back({bt, lba, false, 0});
      mapped[lba] = false;
    }
  }
  ASSERT_LT(bt, attack_begin + Seconds(6));

  // The power cut hits device B at a random op inside the burst.
  std::size_t crash_at = burst_start + 20 + rng.Below(110);
  ASSERT_LT(crash_at, history.size());

  bool crashed = false;
  for (std::size_t i = 0; i < history.size(); ++i) {
    const Op& op = history[i];
    if (i == burst_start) {
      // Let every phase-1 backup expire before the burst on both devices.
      clean.ReleaseExpired(attack_begin);
      faulty.ReleaseExpired(attack_begin);
      ASSERT_EQ(clean.RecoveryQueueSize(), 0u);
    }
    if (i == crash_at) {
      (void)faulty.RebuildFromNand(op.t);
      crashed = true;
    }
    if (op.is_write) {
      ASSERT_TRUE(clean.WritePage(op.lba, {op.stamp, {}}, op.t).ok()) << i;
      ASSERT_TRUE(faulty.WritePage(op.lba, {op.stamp, {}}, op.t).ok()) << i;
    } else {
      ASSERT_TRUE(clean.TrimPage(op.lba, op.t).ok()) << i;
      ASSERT_TRUE(faulty.TrimPage(op.lba, op.t).ok()) << i;
    }
  }
  ASSERT_TRUE(crashed);
  ASSERT_EQ(faulty.Stats().rebuilds, 1u);

  // Exactness preconditions, on both devices.
  for (const PageFtl* dev : {&clean, &faulty}) {
    ASSERT_EQ(dev->Stats().forced_releases, 0u);
    ASSERT_EQ(dev->Stats().queue_evictions, 0u);
    ASSERT_FALSE(dev->IsDegraded());
  }

  // Detect at 38 s: the 28 s horizon predates the whole burst.
  SimTime detect = attack_begin + Seconds(8);

  // Before any rollback, the rebuilt device must already agree with the
  // uncrashed one — in particular, burst trims that were the final state of
  // their LBA at the power cut were replayed from their tombstones, not
  // resurrected. (Reads age the retention window on both devices
  // identically, so this probe does not perturb the rollback below.)
  for (Lba lba = 0; lba < n; ++lba) {
    FtlResult a = clean.ReadPage(lba, detect);
    FtlResult b = faulty.ReadPage(lba, detect);
    ASSERT_EQ(a.status, b.status) << "pre-rollback lba " << lba;
    if (a.ok()) {
      ASSERT_EQ(a.data.stamp, b.data.stamp) << "pre-rollback lba " << lba;
    }
  }

  clean.RollBack(detect);
  faulty.RollBack(detect);
  EXPECT_EQ(clean.CheckInvariants(), "");
  EXPECT_EQ(faulty.CheckInvariants(), "");

  // Byte-equivalence with the no-fault, no-crash baseline.
  for (Lba lba = 0; lba < n; ++lba) {
    FtlResult a = clean.ReadPage(lba, detect);
    FtlResult b = faulty.ReadPage(lba, detect);
    ASSERT_EQ(a.status, b.status) << "lba " << lba;
    if (a.ok()) {
      ASSERT_EQ(a.data.stamp, b.data.stamp) << "lba " << lba;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultPowerLossPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 101));

// ---------------------------------------------------------------------------
// Crash-anywhere with durable metadata (DESIGN.md §13): the same
// clean-vs-crashed twin equivalence as above, but with checkpoint + journal
// enabled so the crashed device takes the O(Δ) rebuild — and the crash
// instant rotates through the windows a metadata-aware adversary would aim
// for:
//
//   seed % 3 == 0  at a request boundary (the classic cut)
//   seed % 3 == 1  *inside* a checkpoint commit (torn checkpoint; the
//                  previous epoch must stay authoritative)
//   seed % 3 == 2  *inside* a journal-batch flush (torn journal page; the
//                  replayable tail truncates at the durable prefix)
//
// Seeds divisible by 5 additionally script a metadata program fail, so some
// devices reach the crash with a burned journal slot or an aborted
// checkpoint behind them. Whatever path the rebuild reports — fast or
// fallback — the rolled-back state must match the uncrashed twin exactly.
class CheckpointCrashPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointCrashPropertyTest, RollbackAfterTornMetadataMatchesBaseline) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 104729 + 41);

  FtlConfig clean_cfg;
  clean_cfg.geometry = nand::TestGeometry();
  clean_cfg.latency = nand::LatencyModel::Zero();
  clean_cfg.exported_fraction = 0.5;
  clean_cfg.checkpoint.enabled = true;  // both twins lose 8 blocks to metadata

  FtlConfig faulty_cfg = clean_cfg;
  faulty_cfg.errors.program_fail_prob = 5e-3;
  faulty_cfg.errors.erase_fail_prob = 2e-3;
  faulty_cfg.error_seed = seed;
  if (seed % 5 == 0) faulty_cfg.fault_plan.FailMetaProgramAtOp(1);

  PageFtl clean(clean_cfg);
  PageFtl faulty(faulty_cfg);
  Lba n = clean.ExportedLbas();

  struct Op {
    SimTime t = 0;
    Lba lba = 0;
    bool is_write = true;
    std::uint64_t stamp = 0;
  };
  std::vector<Op> history;
  std::vector<bool> mapped(n, false);

  SimTime t = 0;
  for (int op = 0; op < 300; ++op) {
    t += rng.BelowTime(9'000);
    Lba lba = rng.Below(n);
    history.push_back({t, lba, true, static_cast<std::uint64_t>(1000 + op)});
    mapped[lba] = true;
  }
  ASSERT_LT(t, Seconds(3));

  SimTime attack_begin = Seconds(30);
  SimTime bt = attack_begin;
  std::size_t burst_start = history.size();
  for (int op = 0; op < 150; ++op) {
    bt += rng.BelowTime(40'000);
    Lba lba = rng.Below(n);
    if (rng.Chance(0.8) || !mapped[lba]) {
      history.push_back(
          {bt, lba, true, static_cast<std::uint64_t>(900000 + op)});
      mapped[lba] = true;
    } else {
      history.push_back({bt, lba, false, 0});
      mapped[lba] = false;
    }
  }
  ASSERT_LT(bt, attack_begin + Seconds(6));

  std::size_t crash_at = burst_start + 20 + rng.Below(110);
  ASSERT_LT(crash_at, history.size());

  bool crashed = false;
  for (std::size_t i = 0; i < history.size(); ++i) {
    const Op& op = history[i];
    if (i == burst_start) {
      clean.ReleaseExpired(attack_begin);
      faulty.ReleaseExpired(attack_begin);
      ASSERT_EQ(clean.RecoveryQueueSize(), 0u);
      // A committed (or, on meta-fault seeds, possibly aborted) checkpoint
      // right before the burst: the crash delta is the burst prefix.
      faulty.TakeCheckpoint(attack_begin);
    }
    if (i == crash_at) {
      // Park the device inside a metadata flush at the instant of death,
      // exactly as PowerLossInjector's tear windows do at host level.
      const std::uint64_t window = seed % 3;
      if (window != 0) {
        bool fired = false;
        const char* point =
            window == 1 ? "checkpoint.flush" : "journal.flush";
        faulty.Nand().SetPowerCutProbe([&fired, point](const char* at) {
          if (fired || std::strcmp(at, point) != 0) return false;
          fired = true;
          return true;
        });
        if (window == 1) {
          faulty.TakeCheckpoint(op.t);
        } else {
          faulty.FlushJournal(op.t);
        }
        faulty.Nand().SetPowerCutProbe(nullptr);
      }
      PageFtl::RebuildReport report = faulty.RebuildFromNand(op.t);
      ASSERT_TRUE(report.used_checkpoint || report.fallback_full_scan)
          << "rebuild must pick a path with checkpointing enabled";
      ASSERT_EQ(faulty.CheckInvariants(), "")
          << "immediately after the rebuild (fast=" << report.used_checkpoint
          << ")";
      crashed = true;
    }
    if (op.is_write) {
      ASSERT_TRUE(clean.WritePage(op.lba, {op.stamp, {}}, op.t).ok()) << i;
      ASSERT_TRUE(faulty.WritePage(op.lba, {op.stamp, {}}, op.t).ok()) << i;
    } else {
      ASSERT_TRUE(clean.TrimPage(op.lba, op.t).ok()) << i;
      ASSERT_TRUE(faulty.TrimPage(op.lba, op.t).ok()) << i;
    }
  }
  ASSERT_TRUE(crashed);
  ASSERT_EQ(faulty.Stats().rebuilds, 1u);
  ASSERT_EQ(faulty.Stats().rebuild_fast_path +
                faulty.Stats().rebuild_fallbacks,
            1u);

  for (const PageFtl* dev : {&clean, &faulty}) {
    ASSERT_EQ(dev->Stats().forced_releases, 0u);
    ASSERT_EQ(dev->Stats().queue_evictions, 0u);
    ASSERT_FALSE(dev->IsDegraded());
  }

  SimTime detect = attack_begin + Seconds(8);
  for (Lba lba = 0; lba < n; ++lba) {
    FtlResult a = clean.ReadPage(lba, detect);
    FtlResult b = faulty.ReadPage(lba, detect);
    ASSERT_EQ(a.status, b.status) << "pre-rollback lba " << lba;
    if (a.ok()) {
      ASSERT_EQ(a.data.stamp, b.data.stamp) << "pre-rollback lba " << lba;
    }
  }

  clean.RollBack(detect);
  faulty.RollBack(detect);
  EXPECT_EQ(clean.CheckInvariants(), "");
  EXPECT_EQ(faulty.CheckInvariants(), "");

  for (Lba lba = 0; lba < n; ++lba) {
    FtlResult a = clean.ReadPage(lba, detect);
    FtlResult b = faulty.ReadPage(lba, detect);
    ASSERT_EQ(a.status, b.status) << "lba " << lba;
    if (a.ok()) {
      ASSERT_EQ(a.data.stamp, b.data.stamp) << "lba " << lba;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointCrashPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 101));

// ---------------------------------------------------------------------------
// Selective per-range rollback (src/version): a protected range rolls back
// to a restore point *older than the paper window* while the rest of the
// device keeps its latest state. Each seed drives two devices through an
// identical history — device A uninterrupted, device B power-cut once inside
// the attack burst and once right before recovery — and both must agree
// byte-for-byte with each other and with the reference model.
//
// Phase 1 stays write-only (the tombstone guarantee is window-scoped, as in
// the fault suite above) and stamps are globally unique, so the version
// store's crash-convergence precondition holds: no content dedupe occurred
// (asserted), hence the rebuilt chains equal the uncrashed ones.
class SelectiveRollbackPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectiveRollbackPropertyTest, ProtectedRangeRestoresAcrossCrashes) {
  Rng rng(GetParam() * 104729 + 29);

  constexpr Lba kProtBegin = 0;
  constexpr Lba kProtEnd = 64;
  auto table = std::make_shared<version::RangePolicyTable>();
  ASSERT_TRUE(table->Add({kProtBegin, kProtEnd, /*keep_versions=*/8,
                          /*keep_window=*/Seconds(60)}));

  FtlConfig clean_cfg;
  clean_cfg.geometry = nand::TestGeometry();  // 512 physical pages
  clean_cfg.latency = nand::LatencyModel::Zero();
  clean_cfg.exported_fraction = 0.5;  // 256 LBAs
  clean_cfg.range_policies = table;

  FtlConfig faulty_cfg = clean_cfg;
  faulty_cfg.errors.program_fail_prob = 5e-3;
  faulty_cfg.errors.erase_fail_prob = 2e-3;
  faulty_cfg.error_seed = GetParam();

  PageFtl clean(clean_cfg);
  PageFtl faulty(faulty_cfg);
  Lba n = clean.ExportedLbas();
  ASSERT_GE(n, kProtEnd);

  struct Op {
    SimTime t = 0;
    Lba lba = 0;
    std::uint64_t stamp = 0;
  };
  std::vector<Op> history;
  std::vector<std::int64_t> at_restore(n, -1);  // model at the restore point
  std::vector<std::int64_t> latest(n, -1);      // model after the burst

  // Phase 1: write-only history; its final state is the restore target.
  SimTime t = 0;
  for (int op = 0; op < 300; ++op) {
    t += rng.BelowTime(9'000);
    Lba lba = rng.Below(n);
    history.push_back({t, lba, static_cast<std::uint64_t>(1000 + op)});
    at_restore[lba] = 1000 + op;
    latest[lba] = 1000 + op;
  }
  ASSERT_LT(t, Seconds(3));
  const SimTime restore_point = Seconds(3);

  // Phase 2: write-only attack burst in [30 s, 36 s).
  SimTime attack_begin = Seconds(30);
  SimTime bt = attack_begin;
  std::size_t burst_start = history.size();
  for (int op = 0; op < 150; ++op) {
    bt += rng.BelowTime(40'000);
    Lba lba = rng.Below(n);
    history.push_back({bt, lba, static_cast<std::uint64_t>(900000 + op)});
    latest[lba] = 900000 + op;
  }
  ASSERT_LT(bt, attack_begin + Seconds(6));

  std::size_t crash_at = burst_start + 20 + rng.Below(110);
  ASSERT_LT(crash_at, history.size());

  for (std::size_t i = 0; i < history.size(); ++i) {
    const Op& op = history[i];
    if (i == burst_start) {
      // Phase-1 backups age out before the burst: unprotected ones are
      // released for good, protected ones move into the version store.
      clean.ReleaseExpired(attack_begin);
      faulty.ReleaseExpired(attack_begin);
      ASSERT_EQ(clean.RecoveryQueueSize(), 0u);
      ASSERT_GT(clean.Store().VersionCount(), 0u)
          << "the protected range never reached the store";
    }
    if (i == crash_at) (void)faulty.RebuildFromNand(op.t);
    ASSERT_TRUE(clean.WritePage(op.lba, {op.stamp, {}}, op.t).ok()) << i;
    ASSERT_TRUE(faulty.WritePage(op.lba, {op.stamp, {}}, op.t).ok()) << i;
  }

  // Second power cut after the burst: archived pages themselves must
  // survive a rebuild (rescan -> ring -> re-archive converges).
  (void)faulty.RebuildFromNand(Seconds(38));
  ASSERT_EQ(faulty.Stats().rebuilds, 2u);

  // Exactness preconditions.
  for (const PageFtl* dev : {&clean, &faulty}) {
    ASSERT_EQ(dev->Stats().forced_releases, 0u);
    ASSERT_EQ(dev->Stats().queue_evictions, 0u);
    // This suite exercises the *full-rescan* convergence path, whose
    // exactness needs duplicate-free chains (unique stamps, asserted here).
    // Deduped chains survive crashes via the checkpoint fast path instead —
    // verified behavior in checkpoint_journal_test
    // (DedupedVersionStoreSurvivesCrashExactly), no longer a precondition.
    ASSERT_EQ(dev->Stats().archive_dedupe_hits, 0u)
        << "full-rescan exactness needs unique stamps";
    ASSERT_EQ(dev->Stats().archived_evictions, 0u);
    ASSERT_FALSE(dev->IsDegraded());
  }

  const SimTime recover_at = Seconds(40);
  RangeRollbackReport ra =
      clean.RollBackRange(kProtBegin, kProtEnd, restore_point, recover_at);
  RangeRollbackReport rb =
      faulty.RollBackRange(kProtBegin, kProtEnd, restore_point, recover_at);
  EXPECT_EQ(ra.lbas_examined, kProtEnd - kProtBegin);
  EXPECT_EQ(ra.restored, rb.restored);
  EXPECT_EQ(ra.failed, 0u);
  EXPECT_EQ(rb.failed, 0u);
  EXPECT_EQ(clean.CheckInvariants(), "");
  EXPECT_EQ(faulty.CheckInvariants(), "");

  for (Lba lba = 0; lba < n; ++lba) {
    FtlResult a = clean.ReadPage(lba, recover_at);
    FtlResult b = faulty.ReadPage(lba, recover_at);
    ASSERT_EQ(a.status, b.status) << "lba " << lba;
    if (a.ok()) {
      ASSERT_EQ(a.data.stamp, b.data.stamp) << "lba " << lba;
    }

    if (lba < kProtEnd) {
      // Protected: back at the restore point. The one documented exception
      // is an LBA born inside the burst — a write to unmapped space leaves
      // no old version, so there is nothing to revert to (same non-goal as
      // global rollback).
      if (at_restore[lba] >= 0) {
        ASSERT_TRUE(a.ok()) << "protected lba " << lba;
        EXPECT_EQ(a.data.stamp, static_cast<std::uint64_t>(at_restore[lba]))
            << "protected lba " << lba;
      } else if (latest[lba] >= 0) {
        ASSERT_TRUE(a.ok()) << "protected lba " << lba;
        EXPECT_EQ(a.data.stamp, static_cast<std::uint64_t>(latest[lba]))
            << "protected lba " << lba << " (unrevertible fresh write)";
      } else {
        EXPECT_EQ(a.status, FtlStatus::kUnmapped) << "protected lba " << lba;
      }
    } else {
      // Unprotected: the rollback must not have touched it.
      if (latest[lba] >= 0) {
        ASSERT_TRUE(a.ok()) << "unprotected lba " << lba;
        EXPECT_EQ(a.data.stamp, static_cast<std::uint64_t>(latest[lba]))
            << "unprotected lba " << lba;
      } else {
        EXPECT_EQ(a.status, FtlStatus::kUnmapped)
            << "unprotected lba " << lba;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectiveRollbackPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 101));

TEST(RollbackEdgeTest, RollbackOnEmptyDeviceIsNoop) {
  PageFtl ftl({});
  RollbackReport r = ftl.RollBack(Seconds(100));
  EXPECT_EQ(r.entries_reverted, 0u);
  EXPECT_TRUE(ftl.IsReadOnly());
}

TEST(RollbackEdgeTest, ConventionalModeCannotRollBack) {
  FtlConfig cfg;
  cfg.geometry = nand::TestGeometry();
  cfg.latency = nand::LatencyModel::Zero();
  cfg.delayed_deletion = false;
  PageFtl ftl(cfg);
  ftl.WritePage(0, {1, {}}, Seconds(1));
  ftl.WritePage(0, {2, {}}, Seconds(20));
  RollbackReport r = ftl.RollBack(Seconds(21));
  EXPECT_EQ(r.entries_reverted, 0u);
  EXPECT_EQ(ftl.ReadPage(0, Seconds(21)).data.stamp, 2u);  // data is gone
}

TEST(RollbackEdgeTest, DoubleRollbackIsIdempotent) {
  FtlConfig cfg;
  cfg.geometry = nand::TestGeometry();
  cfg.latency = nand::LatencyModel::Zero();
  PageFtl ftl(cfg);
  ftl.WritePage(5, {1, {}}, Seconds(1));
  ftl.WritePage(5, {2, {}}, Seconds(20));
  ftl.RollBack(Seconds(21));
  RollbackReport second = ftl.RollBack(Seconds(21));
  EXPECT_EQ(second.entries_reverted, 0u);
  EXPECT_EQ(ftl.ReadPage(5, Seconds(21)).data.stamp, 1u);
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

TEST(RollbackEdgeTest, WritesAfterRebootAreRecoverableAgain) {
  FtlConfig cfg;
  cfg.geometry = nand::TestGeometry();
  cfg.latency = nand::LatencyModel::Zero();
  PageFtl ftl(cfg);
  ftl.WritePage(5, {1, {}}, Seconds(1));
  ftl.WritePage(5, {2, {}}, Seconds(20));
  ftl.RollBack(Seconds(21));
  ftl.SetReadOnly(false);  // reboot
  // A second attack on the recovered data.
  ftl.WritePage(5, {3, {}}, Seconds(40));
  ftl.RollBack(Seconds(41));
  EXPECT_EQ(ftl.ReadPage(5, Seconds(41)).data.stamp, 1u);
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

TEST(RollbackEdgeTest, GcDuringAttackDoesNotBreakRecovery) {
  // Force GC between the attack writes and the rollback: retained pages get
  // physically relocated, and the queue must follow them. Sized so that
  // valid + retained always fits in flash (no backup is sacrificed).
  FtlConfig cfg;
  cfg.geometry = nand::TestGeometry();
  cfg.geometry.blocks_per_chip = 8;  // 32 blocks, 256 physical pages
  cfg.latency = nand::LatencyModel::Zero();
  cfg.exported_fraction = 0.5;  // 128 LBAs
  PageFtl ftl(cfg);
  Lba n = ftl.ExportedLbas();
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, {lba, {}}, Seconds(1)).ok());
  }
  // Scattered deletes that expire -> GC fodder inside the fill blocks.
  Rng rng(5);
  std::vector<bool> trimmed(n, false);
  for (int i = 0; i < 40; ++i) {
    Lba lba = rng.Below(n);
    ftl.TrimPage(lba, Seconds(2));
    trimmed[lba] = true;
  }
  // Attack overwrites at t=20 (trim backups released on first touch).
  std::vector<Lba> victims;
  for (Lba lba = 0; lba < n; lba += 4) victims.push_back(lba);
  for (Lba lba : victims) {
    ftl.WritePage(lba, {77777, {}}, Seconds(20));
  }
  // Churn to force GC while the attack backups are live (sized to drain
  // the free pool without exceeding valid+retained <= physical).
  for (int round = 0; round < 5; ++round) {
    for (Lba lba = 1; lba < n; lba += 8) {
      ASSERT_TRUE(ftl.WritePage(lba, {88888, {}}, Seconds(21)).ok());
    }
  }
  ASSERT_GT(ftl.Stats().gc_erases, 0u);
  ASSERT_EQ(ftl.Stats().forced_releases, 0u);
  ftl.RollBack(Seconds(22));
  for (Lba lba : victims) {
    // Victims trimmed long before the attack have no pre-attack version to
    // restore (their backups expired with the deletion); the attack's write
    // to the unmapped LBA is a fresh write — the design's documented
    // non-goal. All still-mapped victims must recover exactly.
    if (trimmed[lba]) continue;
    FtlResult r = ftl.ReadPage(lba, Seconds(22));
    ASSERT_TRUE(r.ok()) << "lba " << lba;
    EXPECT_EQ(r.data.stamp, lba) << "lba " << lba;
  }
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

}  // namespace
}  // namespace insider::ftl
