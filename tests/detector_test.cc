#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/pretrained.h"

namespace insider::core {
namespace {

DetectorConfig TestConfig() {
  DetectorConfig c;
  c.slice_length = Seconds(1);
  c.window_slices = 10;
  c.score_threshold = 3;
  return c;
}

/// A tree that votes ransomware iff OWIO > 50.
DecisionTree OwioTree(double threshold = 50.0) {
  DecisionTree t;
  // Build directly with the root at index 0.
  std::vector<DecisionTree::Node> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = FeatureId::kOwIo;
  nodes[0].threshold = threshold;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].is_leaf = true;
  nodes[1].label = false;
  nodes[2].is_leaf = true;
  nodes[2].label = true;
  return DecisionTree(std::move(nodes));
}

/// Emit a read+overwrite of `blocks` blocks inside the given slice.
void Overwrite(Detector& d, SimTime at, Lba lba, std::uint32_t blocks) {
  d.OnRequest({at, lba, blocks, IoMode::kRead});
  d.OnRequest({at + 1000, lba, blocks, IoMode::kWrite});
}

TEST(DetectorTest, NoTrafficNoAlarm) {
  Detector d(TestConfig(), OwioTree());
  d.AdvanceTo(Seconds(30));
  EXPECT_EQ(d.Score(), 0);
  EXPECT_FALSE(d.AlarmActive());
  EXPECT_FALSE(d.FirstAlarmTime().has_value());
  EXPECT_EQ(d.History().size(), 30u);
}

TEST(DetectorTest, SliceBoundariesAreHalfOpen) {
  Detector d(TestConfig(), OwioTree());
  d.OnRequest({Seconds(1) - 1, 0, 1, IoMode::kRead});
  EXPECT_EQ(d.History().size(), 0u);  // slice 0 not closed yet
  d.OnRequest({Seconds(1), 0, 1, IoMode::kRead});
  EXPECT_EQ(d.History().size(), 1u);  // request at t=1s closes slice 0
}

TEST(DetectorTest, OverwritesRaiseVotesAndScore) {
  Detector d(TestConfig(), OwioTree());
  for (int s = 0; s < 5; ++s) {
    Overwrite(d, Seconds(s) + 1000, static_cast<Lba>(s) * 1000, 100);
  }
  d.AdvanceTo(Seconds(5));
  EXPECT_EQ(d.Score(), 5);
  EXPECT_TRUE(d.AlarmActive());
}

TEST(DetectorTest, AlarmFiresAtThreshold) {
  Detector d(TestConfig(), OwioTree());
  Overwrite(d, Seconds(0) + 1000, 0, 100);
  Overwrite(d, Seconds(1) + 1000, 1000, 100);
  d.AdvanceTo(Seconds(2));
  EXPECT_EQ(d.Score(), 2);
  EXPECT_FALSE(d.AlarmActive());
  Overwrite(d, Seconds(2) + 1000, 2000, 100);
  d.AdvanceTo(Seconds(3));
  EXPECT_EQ(d.Score(), 3);
  EXPECT_TRUE(d.AlarmActive());
  ASSERT_TRUE(d.FirstAlarmTime().has_value());
  EXPECT_EQ(*d.FirstAlarmTime(), Seconds(3));
}

TEST(DetectorTest, ScoreSlidesBackDownAfterAttackStops) {
  Detector d(TestConfig(), OwioTree());
  for (int s = 0; s < 4; ++s) {
    Overwrite(d, Seconds(s) + 1000, static_cast<Lba>(s) * 1000, 100);
  }
  d.AdvanceTo(Seconds(20));  // long quiet period
  EXPECT_EQ(d.Score(), 0);
  EXPECT_FALSE(d.AlarmActive());
  // But the first alarm time is latched.
  EXPECT_TRUE(d.FirstAlarmTime().has_value());
}

TEST(DetectorTest, SmallOverwritesDontVote) {
  Detector d(TestConfig(), OwioTree());
  for (int s = 0; s < 10; ++s) {
    Overwrite(d, Seconds(s) + 1000, static_cast<Lba>(s) * 1000, 10);
  }
  d.AdvanceTo(Seconds(10));
  EXPECT_EQ(d.Score(), 0);
}

TEST(DetectorTest, FeaturesOwioAndOwst) {
  Detector d(TestConfig(), OwioTree());
  d.OnRequest({1000, 100, 50, IoMode::kRead});
  d.OnRequest({2000, 100, 50, IoMode::kWrite});   // 50 overwrites
  d.OnRequest({3000, 5000, 50, IoMode::kWrite});  // 50 plain writes
  d.AdvanceTo(Seconds(1));
  const SliceRecord& rec = d.History().front();
  EXPECT_DOUBLE_EQ(rec.features.owio(), 50.0);
  EXPECT_DOUBLE_EQ(rec.features.owst(), 0.5);
  EXPECT_DOUBLE_EQ(rec.features.io(), 150.0);
}

TEST(DetectorTest, PwioSumsPreviousWindow) {
  Detector d(TestConfig(), OwioTree());
  for (int s = 0; s < 3; ++s) {
    Overwrite(d, Seconds(s) + 1000, static_cast<Lba>(s) * 1000, 60);
  }
  d.AdvanceTo(Seconds(4));
  // Slice 3's PWIO = OWIO of slices 0..2 = 180.
  EXPECT_DOUBLE_EQ(d.History()[3].features.pwio(), 180.0);
  // Slice 0 has no history.
  EXPECT_DOUBLE_EQ(d.History()[0].features.pwio(), 0.0);
}

TEST(DetectorTest, OwSlopeSpikesOnAbruptIncrease) {
  Detector d(TestConfig(), OwioTree(1e18));  // never vote; just features
  Overwrite(d, Seconds(0) + 1000, 0, 10);
  d.AdvanceTo(Seconds(5));
  Overwrite(d, Seconds(5) + 1000, 5000, 100);
  d.AdvanceTo(Seconds(6));
  const SliceRecord& burst = d.History()[5];
  // Previous window held 10 overwrites -> avg 1/slice; burst of 100 -> 100x.
  EXPECT_GT(burst.features.owslope(), 50.0);
}

TEST(DetectorTest, TrimsAreIgnored) {
  Detector d(TestConfig(), OwioTree());
  d.OnRequest({1000, 0, 100, IoMode::kRead});
  d.OnRequest({2000, 0, 100, IoMode::kTrim});
  d.AdvanceTo(Seconds(1));
  EXPECT_DOUBLE_EQ(d.History()[0].features.owio(), 0.0);
  EXPECT_DOUBLE_EQ(d.History()[0].features.io(), 100.0);  // reads only
}

TEST(DetectorTest, AvgWioReflectsRunLengths) {
  Detector d(TestConfig(), OwioTree(1e18));
  // One contiguous 64-block overwrite run.
  d.OnRequest({1000, 100, 64, IoMode::kRead});
  d.OnRequest({2000, 100, 64, IoMode::kWrite});
  d.AdvanceTo(Seconds(1));
  EXPECT_DOUBLE_EQ(d.History()[0].features.avgwio(), 64.0);
}

TEST(DetectorTest, ResetClearsEverything) {
  Detector d(TestConfig(), OwioTree());
  for (int s = 0; s < 5; ++s) {
    Overwrite(d, Seconds(s) + 1000, static_cast<Lba>(s) * 1000, 100);
  }
  d.AdvanceTo(Seconds(5));
  ASSERT_TRUE(d.AlarmActive());
  d.Reset();
  EXPECT_EQ(d.Score(), 0);
  EXPECT_FALSE(d.AlarmActive());
  EXPECT_FALSE(d.FirstAlarmTime().has_value());
  EXPECT_TRUE(d.History().empty());
  EXPECT_EQ(d.Table().EntryCount(), 0u);
}

TEST(DetectorTest, WindowSlideDropsStaleTableEntries) {
  Detector d(TestConfig(), OwioTree());
  d.OnRequest({1000, 100, 8, IoMode::kRead});
  d.AdvanceTo(Seconds(30));
  EXPECT_EQ(d.Table().EntryCount(), 0u);
}

TEST(DetectorTest, WriteLongAfterReadIsNotOverwrite) {
  // The footnote-1 semantics: overwrites only count if the read happened
  // within the window.
  Detector d(TestConfig(), OwioTree());
  d.OnRequest({1000, 100, 64, IoMode::kRead});
  d.AdvanceTo(Seconds(15));  // read ages out of the 10-slice window
  d.OnRequest({Seconds(15) + 1000, 100, 64, IoMode::kWrite});
  d.AdvanceTo(Seconds(16));
  EXPECT_DOUBLE_EQ(d.History()[15].features.owio(), 0.0);
}

TEST(DetectorTest, HistoryRingDropsOldestBeyondTheCap) {
  DetectorConfig cfg = TestConfig();
  cfg.history_limit = 8;
  Detector d(cfg, OwioTree());
  d.AdvanceTo(Seconds(30));
  ASSERT_EQ(d.History().size(), 8u);
  // The ring keeps the newest slices: 22..29.
  EXPECT_EQ(d.History().front().slice, 22u);
  EXPECT_EQ(d.History().back().slice, 29u);
  // Score and alarm bookkeeping are unaffected by record truncation.
  EXPECT_EQ(d.Score(), 0);
  EXPECT_EQ(d.NextSliceEnd(), Seconds(31));
}

TEST(DetectorTest, ZeroHistoryLimitOptsIntoUnboundedHistory) {
  DetectorConfig cfg = TestConfig();
  cfg.history_limit = 0;
  Detector d(cfg, OwioTree());
  d.AdvanceTo(Seconds(5000));
  EXPECT_EQ(d.History().size(), 5000u);
  EXPECT_EQ(d.History().front().slice, 0u);
}

TEST(DetectorTest, AlarmStateSurvivesRingEviction) {
  // The slice that raised the alarm may fall off the ring; FirstAlarmTime
  // and the running score must not depend on it staying resident.
  DetectorConfig cfg = TestConfig();
  cfg.history_limit = 4;
  Detector d(cfg, OwioTree());
  for (int s = 0; s < 5; ++s) {
    Overwrite(d, Seconds(s) + 1000, static_cast<Lba>(s) * 1000, 100);
  }
  d.AdvanceTo(Seconds(40));
  ASSERT_TRUE(d.FirstAlarmTime().has_value());
  EXPECT_EQ(*d.FirstAlarmTime(), Seconds(3));
  EXPECT_EQ(d.History().size(), 4u);
  EXPECT_GT(d.History().front().slice, 3u);
}

class DetectorParamTest : public ::testing::TestWithParam<int> {};

TEST_P(DetectorParamTest, AlarmLatencyMatchesThreshold) {
  // With a constant attack, the alarm fires exactly `threshold` slices in.
  DetectorConfig cfg = TestConfig();
  cfg.score_threshold = GetParam();
  Detector d(cfg, OwioTree());
  for (int s = 0; s < 10; ++s) {
    Overwrite(d, Seconds(s) + 1000, static_cast<Lba>(s) * 1000, 100);
  }
  d.AdvanceTo(Seconds(10));
  ASSERT_TRUE(d.FirstAlarmTime().has_value());
  EXPECT_EQ(*d.FirstAlarmTime(), Seconds(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DetectorParamTest,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

}  // namespace
}  // namespace insider::core
