// KEY-SSD-style range access control. Unit coverage of the RangeLockTable
// rules (keys, exact-range unlock, overlap semantics) plus frontend
// integration: with a table attached to the IoEngine, lock/unlock admin
// commands are consumed in-engine and an unauthenticated write or trim into
// a locked range completes with kRangeLocked without the FTL ever seeing
// it — its stats and invariants are bit-identical before and after.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/decision_tree.h"
#include "host/ssd.h"
#include "host/ssd_target.h"
#include "io/io_engine.h"
#include "version/range_lock.h"

namespace insider::version {
namespace {

TEST(RangeLockTableTest, LockRejectsBadArguments) {
  RangeLockTable t;
  EXPECT_FALSE(t.Lock(0, 64, 0));    // key 0 = unauthenticated
  EXPECT_FALSE(t.Lock(10, 10, 1));   // empty
  EXPECT_FALSE(t.Lock(20, 10, 1));   // inverted
  EXPECT_EQ(t.LockCount(), 0u);

  ASSERT_TRUE(t.Lock(10, 20, 0xA));
  EXPECT_FALSE(t.Lock(15, 25, 0xB));  // overlap
  EXPECT_FALSE(t.Lock(0, 11, 0xA));   // overlap, even under the same key
  EXPECT_TRUE(t.Lock(20, 30, 0xB));   // adjacent is fine
  EXPECT_EQ(t.LockCount(), 2u);
  EXPECT_EQ(t.Stats().locks, 2u);
  EXPECT_EQ(t.Stats().denied_admin, 5u);
}

TEST(RangeLockTableTest, UnlockRequiresExactRangeAndKey) {
  RangeLockTable t;
  ASSERT_TRUE(t.Lock(10, 20, 0xA));
  EXPECT_FALSE(t.Unlock(10, 20, 0xB));  // wrong key
  EXPECT_FALSE(t.Unlock(10, 15, 0xA));  // partial unlock is not a thing
  EXPECT_FALSE(t.Unlock(5, 20, 0xA));   // superset is not a thing either
  EXPECT_TRUE(t.Locked(15));
  EXPECT_TRUE(t.Unlock(10, 20, 0xA));
  EXPECT_FALSE(t.Locked(15));
  EXPECT_EQ(t.Stats().unlocks, 1u);
  EXPECT_EQ(t.Stats().denied_admin, 3u);
}

TEST(RangeLockTableTest, WriteAllowedHonorsKeysAndOverlap) {
  RangeLockTable t;
  ASSERT_TRUE(t.Lock(10, 20, 0xA));

  EXPECT_TRUE(t.WriteAllowed(0, 10, 0));    // ends where the lock begins
  EXPECT_FALSE(t.WriteAllowed(8, 4, 0));    // straddles the boundary
  EXPECT_FALSE(t.WriteAllowed(15, 1, 0xB)); // wrong key
  EXPECT_TRUE(t.WriteAllowed(15, 1, 0xA));  // the lock holder may write
  EXPECT_TRUE(t.WriteAllowed(20, 4, 0));    // past the end
  EXPECT_EQ(t.Stats().denied_writes, 2u);

  // A span touching two ranges under different keys is denied either key.
  ASSERT_TRUE(t.Lock(20, 30, 0xB));
  EXPECT_FALSE(t.WriteAllowed(15, 10, 0xA));
  EXPECT_FALSE(t.WriteAllowed(15, 10, 0xB));
}

}  // namespace
}  // namespace insider::version

// ---------------------------------------------------------------------------
// Frontend integration through the multi-queue engine.

namespace insider::host {
namespace {

SsdConfig SmallSsd() {
  SsdConfig c;
  c.ftl.geometry = nand::TestGeometry();
  c.ftl.latency = nand::LatencyModel::Zero();
  return c;
}

/// Tree voting ransomware iff OWIO > 30 (same shape as ssd_test.cc) —
/// inert for the handful of requests these tests submit.
core::DecisionTree SimpleTree() {
  std::vector<core::DecisionTree::Node> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = core::FeatureId::kOwIo;
  nodes[0].threshold = 30.0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].is_leaf = true;
  nodes[1].label = false;
  nodes[2].is_leaf = true;
  nodes[2].label = true;
  return core::DecisionTree(std::move(nodes));
}

io::Completion RoundTrip(io::IoEngine& engine, const IoRequest& request,
                         std::uint64_t stamp_base = 0,
                         std::uint64_t auth_key = 0) {
  EXPECT_TRUE(engine.TrySubmit(0, request, stamp_base, auth_key));
  engine.Drain();
  std::optional<io::Completion> c = engine.PopCompletion(0);
  EXPECT_TRUE(c.has_value());
  return c.value_or(io::Completion{});
}

TEST(RangeLockEngineTest, UnauthenticatedWriteBouncesWithoutTouchingFtl) {
  Ssd ssd(SmallSsd(), SimpleTree());
  SsdTarget target(ssd);
  io::IoEngine engine(target, io::EngineConfig{});
  version::RangeLockTable locks;
  engine.AttachLockTable(&locks);

  // Seed some protected data, then take the lock.
  EXPECT_TRUE(RoundTrip(engine, {1000, 5, 1, IoMode::kWrite}, 7).ok);
  io::Completion lock =
      RoundTrip(engine, {2000, 0, 64, IoMode::kRangeLock}, 0, 0xFEED);
  EXPECT_TRUE(lock.ok);
  EXPECT_EQ(lock.status, io::DeviceStatus::kOk);
  EXPECT_TRUE(locks.Locked(5));
  EXPECT_EQ(engine.Stats().lock_admin_ops, 1u);

  const ftl::FtlStats before = ssd.Ftl().Stats();

  io::Completion write =
      RoundTrip(engine, {3000, 5, 1, IoMode::kWrite}, 99);
  EXPECT_FALSE(write.ok);
  EXPECT_EQ(write.status, io::DeviceStatus::kRangeLocked);

  io::Completion trim = RoundTrip(engine, {4000, 5, 1, IoMode::kTrim});
  EXPECT_FALSE(trim.ok);
  EXPECT_EQ(trim.status, io::DeviceStatus::kRangeLocked);

  // The commands were consumed at the frontend: no FTL counter moved and
  // every invariant still holds.
  EXPECT_TRUE(ssd.Ftl().Stats() == before);
  EXPECT_EQ(engine.Stats().lock_rejections, 2u);
  EXPECT_EQ(locks.Stats().denied_writes, 2u);
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
  EXPECT_EQ(ssd.Ftl().ReadPage(5, ssd.Clock().Now()).data.stamp, 7u);

  // The lock holder's key still authorizes writes.
  io::Completion authorized =
      RoundTrip(engine, {5000, 5, 1, IoMode::kWrite}, 42, 0xFEED);
  EXPECT_TRUE(authorized.ok);
  EXPECT_EQ(ssd.Ftl().ReadPage(5, ssd.Clock().Now()).data.stamp, 42u);
}

TEST(RangeLockEngineTest, ReadsAreNeverBlocked) {
  Ssd ssd(SmallSsd(), SimpleTree());
  SsdTarget target(ssd);
  io::IoEngine engine(target, io::EngineConfig{});
  version::RangeLockTable locks;
  engine.AttachLockTable(&locks);

  EXPECT_TRUE(RoundTrip(engine, {1000, 5, 1, IoMode::kWrite}, 7).ok);
  EXPECT_TRUE(RoundTrip(engine, {2000, 0, 64, IoMode::kRangeLock}, 0, 0xA).ok);

  io::Completion read = RoundTrip(engine, {3000, 5, 1, IoMode::kRead});
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.status, io::DeviceStatus::kOk);
  EXPECT_EQ(engine.Stats().lock_rejections, 0u);
}

TEST(RangeLockEngineTest, WrongKeyUnlockDeniedThenCorrectUnlockRestores) {
  Ssd ssd(SmallSsd(), SimpleTree());
  SsdTarget target(ssd);
  io::IoEngine engine(target, io::EngineConfig{});
  version::RangeLockTable locks;
  engine.AttachLockTable(&locks);

  EXPECT_TRUE(RoundTrip(engine, {1000, 0, 64, IoMode::kRangeLock}, 0, 0xA).ok);

  io::Completion bad =
      RoundTrip(engine, {2000, 0, 64, IoMode::kRangeUnlock}, 0, 0xB);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.status, io::DeviceStatus::kRangeLocked);
  EXPECT_TRUE(locks.Locked(0));
  EXPECT_EQ(locks.Stats().denied_admin, 1u);

  EXPECT_TRUE(
      RoundTrip(engine, {3000, 0, 64, IoMode::kRangeUnlock}, 0, 0xA).ok);
  EXPECT_EQ(locks.LockCount(), 0u);
  EXPECT_EQ(engine.Stats().lock_admin_ops, 3u);

  // With the lock gone, unauthenticated writes flow again.
  EXPECT_TRUE(RoundTrip(engine, {4000, 5, 1, IoMode::kWrite}, 9).ok);
  EXPECT_EQ(ssd.Ftl().ReadPage(5, ssd.Clock().Now()).data.stamp, 9u);
}

TEST(RangeLockEngineTest, NoTableMeansNoEnforcement) {
  Ssd ssd(SmallSsd(), SimpleTree());
  SsdTarget target(ssd);
  io::IoEngine engine(target, io::EngineConfig{});  // no AttachLockTable

  // Admin commands degrade to harmless no-ops at the device, and writes are
  // never challenged — the seed data path, untouched.
  EXPECT_TRUE(RoundTrip(engine, {1000, 0, 64, IoMode::kRangeLock}, 0, 0xA).ok);
  EXPECT_TRUE(RoundTrip(engine, {2000, 5, 1, IoMode::kWrite}, 7).ok);
  EXPECT_EQ(ssd.Ftl().ReadPage(5, ssd.Clock().Now()).data.stamp, 7u);
  EXPECT_EQ(engine.Stats().lock_admin_ops, 0u);
  EXPECT_EQ(engine.Stats().lock_rejections, 0u);
}

}  // namespace
}  // namespace insider::host
