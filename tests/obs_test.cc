// Observability layer unit tests: metrics registry (counters, gauges,
// auto-ranging log-bucketed histograms), the trace ring + causal scope, and
// the Chrome-trace / introspection exporters.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/detector.h"
#include "core/pretrained.h"
#include "obs/detector_probe.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace insider::obs {
namespace {

// ---------------------------------------------------------------------------
// Counters, gauges, registry

TEST(MetricsRegistryTest, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  reg.GetCounter("a.events").Inc();
  reg.GetCounter("a.events").Inc(41);
  reg.GetGauge("a.level").Set(2.5);
  EXPECT_EQ(reg.GetCounter("a.events").Value(), 42u);
  EXPECT_DOUBLE_EQ(reg.GetGauge("a.level").Value(), 2.5);
  // Get* creates on first use and returns the same object afterwards.
  Counter& c = reg.GetCounter("b.new");
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  EXPECT_EQ(&reg.GetCounter("b.new"), &c);
}

TEST(MetricsRegistryTest, ReferencesSurviveLaterInsertions) {
  MetricsRegistry reg;
  LogHistogram& h = reg.GetHistogram("m.lat");
  for (int i = 0; i < 64; ++i) {
    reg.GetHistogram("m.other" + std::to_string(i));
  }
  h.Add(7.0);
  EXPECT_EQ(reg.GetHistogram("m.lat").Count(), 1u);
}

TEST(MetricsRegistryTest, SnapshotJsonHasAllSectionsAndNullsForEmpty) {
  MetricsRegistry reg;
  reg.GetCounter("x.count").Inc(3);
  reg.GetGauge("x.gauge").Set(1.0);
  reg.GetHistogram("x.empty");  // no samples: stats must export as null
  LogHistogram& h = reg.GetHistogram("x.lat");
  h.Add(10.0);
  h.Add(20.0);
  std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"x.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);  // x.empty's min/max/mean
  EXPECT_EQ(json.find("nan"), std::string::npos);   // never raw NaN text
}

// ---------------------------------------------------------------------------
// LogHistogram

TEST(LogHistogramTest, EmptyFabricatesNothing) {
  LogHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_TRUE(std::isnan(h.Min()));
  EXPECT_TRUE(std::isnan(h.Max()));
  EXPECT_TRUE(std::isnan(h.Mean()));
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
}

TEST(LogHistogramTest, ZeroAndSubResolutionSamplesLand) {
  LogHistogram h(/*resolution=*/1.0);
  h.Add(0.0);
  h.Add(0.25);
  h.Add(1.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Underflow(), 0u);
  EXPECT_EQ(h.Overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1.0);
}

TEST(LogHistogramTest, NegativesAndAstronomicalValuesAreOutOfBand) {
  LogHistogram h(/*resolution=*/1.0);
  h.Add(-5.0);
  h.Add(std::ldexp(1.0, 70));  // past resolution * 2^63
  h.Add(100.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 1u);
  // The out-of-band mass saturates quantiles to the observed extremes
  // instead of being invented inside the bucketed range.
  EXPECT_DOUBLE_EQ(h.QuantileBounds(0.0).lower, -5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), std::ldexp(1.0, 70));
}

TEST(LogHistogramTest, RelativeBucketErrorIsBoundedBySubBuckets) {
  // One sample: the sandwich must pin it to its bucket, whose relative
  // width is at most 1/sub_buckets. Tightening to observed min/max makes a
  // single sample exact.
  LogHistogram h(1.0, 8);
  h.Add(1000.0);
  LogHistogram::Bounds b = h.QuantileBounds(0.5);
  EXPECT_DOUBLE_EQ(b.lower, 1000.0);
  EXPECT_DOUBLE_EQ(b.upper, 1000.0);
}

// Satellite property test: for random streams, every quantile's exact
// sorted-vector value (k-th smallest, k = max(1, ceil(q*n))) is sandwiched
// by QuantileBounds.
TEST(LogHistogramPropertyTest, QuantileSandwichHoldsForRandomStreams) {
  Rng rng(0x10C4157u);
  const double qs[] = {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0};
  for (int trial = 0; trial < 40; ++trial) {
    LogHistogram h(1.0, 8);
    std::vector<double> samples;
    const std::size_t n = 1 + rng.Below(2000);
    for (std::size_t i = 0; i < n; ++i) {
      double x = 0.0;
      switch (rng.Below(4)) {
        case 0: x = rng.Uniform() * 1e4; break;             // uniform
        case 1: x = rng.Exponential(250.0); break;          // heavy tail
        case 2: x = static_cast<double>(rng.Below(32)); break;  // ties + 0
        default: x = std::ldexp(rng.Uniform() + 0.5,
                                static_cast<int>(rng.Below(40))); break;
      }
      samples.push_back(x);
      h.Add(x);
    }
    std::sort(samples.begin(), samples.end());
    ASSERT_EQ(h.Count(), samples.size());
    for (double q : qs) {
      auto k = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(samples.size())));
      k = std::max<std::size_t>(k, 1);
      double exact = samples[k - 1];
      LogHistogram::Bounds b = h.QuantileBounds(q);
      EXPECT_LE(b.lower, exact) << "trial " << trial << " q=" << q;
      EXPECT_GE(b.upper, exact) << "trial " << trial << " q=" << q;
    }
  }
}

// ---------------------------------------------------------------------------
// Trace ring + scope

TraceEvent Instant(const char* name, SimTime at) {
  TraceEvent e;
  e.name = name;
  e.cat = "test";
  e.begin = at;
  e.end = at;
  return e;
}

TEST(TraceBufferTest, KeepsNewestWhenFullAndReportsDropped) {
  TraceBuffer buf(3);
  for (int i = 0; i < 5; ++i) {
    buf.Push(Instant(("e" + std::to_string(i)).c_str(), i));
  }
  EXPECT_EQ(buf.Size(), 3u);
  EXPECT_EQ(buf.Dropped(), 2u);
  std::vector<TraceEvent> events = buf.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Oldest-first, and the survivors are the newest three.
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");
}

TEST(TraceBufferTest, ClearResets) {
  TraceBuffer buf(2);
  buf.Push(Instant("a", 1));
  buf.Push(Instant("b", 2));
  buf.Push(Instant("c", 3));
  buf.Clear();
  EXPECT_EQ(buf.Size(), 0u);
  EXPECT_EQ(buf.Dropped(), 0u);
  EXPECT_TRUE(buf.Snapshot().empty());
}

TEST(TracerTest, ScopeSetsRestoresAndNests) {
  Tracer tracer(16);
  EXPECT_EQ(tracer.Current(), kBackgroundTrace);
  {
    Tracer::TraceScope outer(&tracer, 7);
    EXPECT_EQ(tracer.Current(), 7u);
    {
      Tracer::TraceScope inner(&tracer, 9);
      EXPECT_EQ(tracer.Current(), 9u);
      tracer.Instant("in.inner", "test", 0, 10);
    }
    EXPECT_EQ(tracer.Current(), 7u);
    tracer.Instant("in.outer", "test", 0, 20);
  }
  EXPECT_EQ(tracer.Current(), kBackgroundTrace);
  std::vector<TraceEvent> events = tracer.Buffer().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace, 9u);
  EXPECT_EQ(events[1].trace, 7u);
}

TEST(TracerTest, NullTracerIsToleratedEverywhere) {
  // Instrumented call sites never branch on attachment; both the scope and
  // the emit helpers must accept a null tracer.
  Tracer::TraceScope scope(nullptr, 42);
  EmitSpan(nullptr, "x", "test", 0, 1, 2);
  EmitInstant(nullptr, "y", "test", 0, 3);
}

// ---------------------------------------------------------------------------
// Chrome-trace export

TEST(ChromeTraceTest, SpansAndInstantsFilterAndRowing) {
  Tracer tracer(16);
  {
    Tracer::TraceScope scope(&tracer, 5);
    tracer.Span("engine.queue_wait", "engine", 2, 100, 180, 17, "lba");
    tracer.Instant("engine.arbitration", "engine", 2, 180);
  }
  tracer.Span("nand.bus", "nand", 1, 200, 210);  // background trace

  std::vector<TraceEvent> events = tracer.Buffer().Snapshot();
  std::string all = ChromeTraceJson(events);
  EXPECT_NE(all.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(all.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(all.find("\"dur\": 80"), std::string::npos);
  EXPECT_NE(all.find("\"lba\": 17"), std::string::npos);
  EXPECT_NE(all.find("nand.bus"), std::string::npos);

  ChromeTraceOptions only;
  only.only_trace = 5;
  only.row_per_trace = true;
  std::string filtered = ChromeTraceJson(events, only);
  EXPECT_EQ(filtered.find("nand.bus"), std::string::npos);
  EXPECT_NE(filtered.find("engine.queue_wait"), std::string::npos);
  // Rowed by trace id, not by the hardware track (2).
  EXPECT_NE(filtered.find("\"tid\": 5"), std::string::npos);
  EXPECT_EQ(filtered.find("\"tid\": 2"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyExportIsValidJson) {
  std::string json = ChromeTraceJson({});
  EXPECT_EQ(json, "{\"traceEvents\": []}\n");
}

// ---------------------------------------------------------------------------
// Detector introspection

TEST(DetectorProbeTest, IntrospectionJsonCarriesTreeAndSlices) {
  core::DetectorConfig config;
  core::Detector detector(config, core::PretrainedTree());
  IoRequest req;
  req.time = 1000;
  req.lba = 4;
  req.length = 8;
  req.mode = IoMode::kWrite;
  detector.OnRequest(req);
  detector.AdvanceTo(config.slice_length * 3 + 1);
  std::string json = DetectorIntrospectionJson(detector);
  EXPECT_NE(json.find("\"tree\""), std::string::npos);
  EXPECT_NE(json.find("\"slices\""), std::string::npos);
  EXPECT_NE(json.find("\"tree_path\""), std::string::npos);
  EXPECT_NE(json.find("\"score\""), std::string::npos);
  EXPECT_NE(json.find("OWIO"), std::string::npos);
}

}  // namespace
}  // namespace insider::obs
