// Header-level signatures of the workload models, measured through the real
// feature extractor. These are the facts the paper's §III-A argues from:
// wiping's OWST ~ 1/7 with very long runs, ransomware's high OWST with
// short runs, a torrent's near-zero overwriting, and so on. If a workload
// model drifts away from its signature, the whole Fig. 7 reproduction
// quietly degrades — these tests pin the signatures down.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/detector.h"
#include "workload/apps.h"
#include "workload/file_set.h"
#include "workload/ransomware.h"

namespace insider {
namespace {

struct Signature {
  double mean_owio = 0;
  double mean_owst = 0;
  double mean_pwio = 0;
  double mean_avgwio = 0;
  std::size_t active_slices = 0;
};

Signature Measure(const std::vector<IoRequest>& requests) {
  core::DetectorConfig dc;
  core::Detector extractor(dc, core::DecisionTree{});
  SimTime last = 0;
  for (const IoRequest& r : requests) {
    extractor.OnRequest(r);
    last = r.time;
  }
  extractor.AdvanceTo(last + dc.slice_length);

  Signature sig;
  RunningStats owio, owst, pwio, avgwio;
  for (const core::SliceRecord& rec : extractor.History()) {
    if (rec.features.io() == 0) continue;
    ++sig.active_slices;
    owio.Add(rec.features.owio());
    owst.Add(rec.features.owst());
    pwio.Add(rec.features.pwio());
    avgwio.Add(rec.features.avgwio());
  }
  sig.mean_owio = owio.Mean();
  sig.mean_owst = owst.Mean();
  sig.mean_pwio = pwio.Mean();
  sig.mean_avgwio = avgwio.Mean();
  return sig;
}

Signature MeasureApp(wl::AppKind kind, std::uint64_t seed = 7) {
  wl::AppParams p;
  p.duration = Seconds(30);
  p.region_blocks = 1 << 20;
  Rng rng(seed);
  return Measure(wl::GenerateApp(kind, p, rng).requests);
}

Signature MeasureRansomware(const char* family, std::uint64_t seed = 7) {
  Rng rng(seed);
  wl::FileSet::Params fp;
  fp.file_count = 1500;
  wl::FileSet files = wl::FileSet::Generate(fp, rng);
  wl::RansomwareRunParams rp;
  rp.scratch_start = 1 << 21;
  rp.max_duration = Seconds(30);
  return Measure(
      wl::GenerateRansomware(wl::RansomwareProfileByName(family), files, rp,
                             rng)
          .requests);
}

// --- Background applications ----------------------------------------------

TEST(AppSignatureTest, DataWipingHasOneSeventhOwst) {
  Signature s = MeasureApp(wl::AppKind::kDataWiping);
  // DoD 5220.22-M: one read, seven writes per block.
  EXPECT_NEAR(s.mean_owst, 1.0 / 7.0, 0.05);
  EXPECT_GT(s.mean_owio, 100.0);  // but it overwrites heavily in volume
}

TEST(AppSignatureTest, DataWipingHasVeryLongRuns) {
  Signature s = MeasureApp(wl::AppKind::kDataWiping);
  EXPECT_GT(s.mean_avgwio, 200.0);  // whole chunks overwritten contiguously
}

TEST(AppSignatureTest, DatabaseHasLongExtentRuns) {
  Signature s = MeasureApp(wl::AppKind::kDatabase);
  EXPECT_LT(s.mean_owst, 0.75);   // WAL appends + re-dirtied pages dilute it
  EXPECT_GT(s.mean_avgwio, 40.0); // InnoDB-style 256-KB extent flushes
  EXPECT_GT(s.mean_pwio, 500.0);  // it genuinely overwrites a lot
}

TEST(AppSignatureTest, P2pDownloadBarelyOverwrites) {
  Signature s = MeasureApp(wl::AppKind::kP2pDownload);
  // Hash-check reads happen after writes: nearly nothing counts.
  EXPECT_LT(s.mean_owio, 10.0);
  EXPECT_LT(s.mean_owst, 0.02);
}

TEST(AppSignatureTest, IoStressBarelyOverwritesDespiteHugeIo) {
  Signature s = MeasureApp(wl::AppKind::kIoStress);
  EXPECT_LT(s.mean_owst, 0.05);
  EXPECT_LT(s.mean_owio, 150.0);
}

TEST(AppSignatureTest, StreamingWorkloadsDontOverwrite) {
  for (wl::AppKind app : {wl::AppKind::kCompression, wl::AppKind::kVideoEncode,
                          wl::AppKind::kVideoDecode}) {
    Signature s = MeasureApp(app);
    EXPECT_LT(s.mean_owio, 5.0) << wl::AppKindName(app);
  }
}

TEST(AppSignatureTest, LightAppsHaveLightFootprints) {
  for (wl::AppKind app : {wl::AppKind::kWebSurfing,
                          wl::AppKind::kSqliteMessenger,
                          wl::AppKind::kOutlookSync}) {
    Signature s = MeasureApp(app);
    EXPECT_LT(s.mean_owio, 60.0) << wl::AppKindName(app);
    EXPECT_LT(s.mean_pwio, 600.0) << wl::AppKindName(app);
  }
}

// --- Ransomware families ---------------------------------------------------

TEST(RansomSignatureTest, InPlaceFamiliesHaveOwstNearOne) {
  for (const char* family : {"Mole", "Locky.bbs", "GlobeImposter"}) {
    Signature s = MeasureRansomware(family);
    EXPECT_GT(s.mean_owst, 0.8) << family;  // every write is an overwrite
  }
}

TEST(RansomSignatureTest, OutOfPlaceFamiliesHaveOwstNearHalf) {
  for (const char* family : {"WannaCry", "Zerber.ufb", "CryptoShield"}) {
    Signature s = MeasureRansomware(family);
    // Ciphertext copy + secure-delete pass: half the writes overwrite.
    EXPECT_GT(s.mean_owst, 0.35) << family;
    EXPECT_LT(s.mean_owst, 0.65) << family;
  }
}

TEST(RansomSignatureTest, AllFamiliesHaveShortOverwriteRuns) {
  for (const std::string& family : wl::AllRansomwareNames()) {
    Signature s = MeasureRansomware(family.c_str());
    // Victims are documents/images: far shorter runs than wiping/DB.
    EXPECT_LT(s.mean_avgwio, 64.0) << family;
    EXPECT_GT(s.mean_avgwio, 1.0) << family;
  }
}

TEST(RansomSignatureTest, FastFamiliesOverwriteFasterThanSlowOnes) {
  double wannacry = MeasureRansomware("WannaCry").mean_owio;
  double mole = MeasureRansomware("Mole").mean_owio;
  double jaff = MeasureRansomware("Jaff").mean_owio;
  double cryptoshield = MeasureRansomware("CryptoShield").mean_owio;
  EXPECT_GT(wannacry, 2 * jaff);
  EXPECT_GT(mole, 2 * cryptoshield);
}

TEST(RansomSignatureTest, SlowFamiliesStillAccumulatePwio) {
  // The Fig. 2(d) argument: Jaff's per-slice OWIO is unimpressive but its
  // window-level PWIO betrays it.
  Signature jaff = MeasureRansomware("Jaff");
  EXPECT_GT(jaff.mean_pwio, 4 * jaff.mean_owio);
}

// --- Separability (the foundation of Fig. 7) -------------------------------

TEST(SeparabilityTest, RansomwareAndWipingDifferOnOwstOrRuns) {
  Signature wiping = MeasureApp(wl::AppKind::kDataWiping);
  for (const char* family : {"WannaCry", "Mole", "GlobeImposter"}) {
    Signature r = MeasureRansomware(family);
    bool owst_separates = r.mean_owst > 2 * wiping.mean_owst;
    bool runs_separate = wiping.mean_avgwio > 4 * r.mean_avgwio;
    EXPECT_TRUE(owst_separates && runs_separate) << family;
  }
}

TEST(SeparabilityTest, RansomwareOutpacesEveryBenignAppOnOwst) {
  for (const std::string& family : wl::AllRansomwareNames()) {
    Signature r = MeasureRansomware(family.c_str());
    for (wl::AppKind app : wl::AllAppKinds()) {
      Signature a = MeasureApp(app);
      // Either the app barely overwrites, or its OWST/AVGWIO give it away.
      bool separable = a.mean_owio < r.mean_owio / 2 ||
                       a.mean_owst < r.mean_owst / 2 ||
                       a.mean_avgwio > 3 * r.mean_avgwio;
      EXPECT_TRUE(separable)
          << family << " vs " << wl::AppKindName(app);
    }
  }
}

}  // namespace
}  // namespace insider
