#include <gtest/gtest.h>

#include <vector>

#include "core/pretrained.h"
#include "host/experiment.h"
#include "host/ssd.h"
#include "host/ssd_target.h"
#include "io/io_engine.h"
#include "workload/multi_tenant.h"

namespace insider::host {
namespace {

SsdConfig SmallSsd() {
  SsdConfig c;
  c.ftl.geometry = nand::TestGeometry();
  c.ftl.latency = nand::LatencyModel::Zero();
  return c;
}

/// Tree voting ransomware iff OWIO > 30 (same shape as ssd_test.cc).
core::DecisionTree SimpleTree() {
  std::vector<core::DecisionTree::Node> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = core::FeatureId::kOwIo;
  nodes[0].threshold = 30.0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].is_leaf = true;
  nodes[1].label = false;
  nodes[2].is_leaf = true;
  nodes[2].label = true;
  return core::DecisionTree(std::move(nodes));
}

wl::TenantSpec WriterTenant(const std::string& name, Lba base,
                            std::size_t count, std::uint64_t stamp_base,
                            SimTime start, SimTime gap) {
  wl::TenantSpec t;
  t.name = name;
  t.stamp_base = stamp_base;
  for (std::size_t i = 0; i < count; ++i) {
    t.requests.push_back({start + CostOf(i, gap),
                          base + i, 1, IoMode::kWrite});
  }
  return t;
}

TEST(MultiTenantTest, TenantsWriteDisjointRegionsThroughQueuePairs) {
  Ssd ssd(SmallSsd(), SimpleTree());
  SsdTarget target(ssd);

  std::vector<wl::TenantSpec> tenants;
  tenants.push_back(WriterTenant("a", 0, 16, 1000, 1000, 500));
  tenants.push_back(WriterTenant("b", 100, 16, 2000, 1200, 500));

  io::EngineConfig ecfg;
  ecfg.queue_count = 2;
  ecfg.queue.sq_depth = 4;
  io::IoEngine engine(target, ecfg);

  wl::MultiTenantDriver driver(std::move(tenants));
  wl::MultiTenantReport report = driver.Run(engine);

  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].completed, 16u);
  EXPECT_EQ(report.tenants[1].completed, 16u);
  EXPECT_EQ(report.tenants[0].errors, 0u);
  EXPECT_EQ(report.tenants[1].errors, 0u);
  EXPECT_EQ(report.total_dispatched, 32u);

  // Each block's payload stamp attributes it to its tenant.
  SimTime now = ssd.Clock().Now();
  for (Lba i = 0; i < 16; ++i) {
    ftl::FtlResult a = ssd.Ftl().ReadPage(i, now);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.data.stamp, 1000u + i);
    ftl::FtlResult b = ssd.Ftl().ReadPage(100 + i, now);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.data.stamp, 2000u + i);
  }
}

TEST(MultiTenantTest, QueueFullBackpressureStallsProducer) {
  Ssd ssd(SmallSsd(), SimpleTree());
  SsdTarget target(ssd);

  // 12 requests all submitted at t=1000 into a depth-1 ring: the host must
  // stall on every command after the first.
  std::vector<wl::TenantSpec> tenants;
  tenants.push_back(WriterTenant("bursty", 0, 12, 0, 1000, 0));

  io::EngineConfig ecfg;
  ecfg.queue_count = 1;
  ecfg.queue.sq_depth = 1;
  io::IoEngine engine(target, ecfg);

  wl::MultiTenantDriver driver(std::move(tenants));
  wl::MultiTenantReport report = driver.Run(engine);

  EXPECT_EQ(report.tenants[0].completed, 12u);
  EXPECT_GT(report.tenants[0].stall_events, 0u);
  EXPECT_EQ(engine.Stats().sq_rejections, report.tenants[0].stall_events);
}

TEST(MultiTenantTest, CompletionTimesMonotoneAndMatchDeviceClock) {
  SsdConfig cfg = SmallSsd();
  cfg.ftl.latency = nand::LatencyModel{};  // real NAND latencies
  Ssd ssd(cfg, SimpleTree());
  SsdTarget target(ssd);

  std::vector<wl::TenantSpec> tenants;
  tenants.push_back(WriterTenant("w0", 0, 24, 0, 1000, 50));
  tenants.push_back(WriterTenant("w1", 64, 24, 5000, 1000, 50));

  io::EngineConfig ecfg;
  ecfg.queue_count = 2;
  ecfg.queue.sq_depth = 8;
  io::IoEngine engine(target, ecfg);

  wl::MultiTenantDriver driver(std::move(tenants));
  wl::MultiTenantReport report = driver.Run(engine);

  for (const wl::TenantResult& t : report.tenants) {
    ASSERT_EQ(t.complete_times.size(), t.completed);
    SimTime prev = 0;
    for (std::size_t i = 0; i < t.complete_times.size(); ++i) {
      EXPECT_GE(t.complete_times[i], prev) << t.name << " cmd " << i;
      EXPECT_GE(t.latencies[i], 0) << t.name << " cmd " << i;
      prev = t.complete_times[i];
    }
    EXPECT_EQ(t.last_complete_time, prev);
    // Completion stamps are FTL media times. Dispatch is pipelined, so they
    // can run ahead of the submission-side device clock but never ahead of
    // the report's end time.
    EXPECT_LE(t.last_complete_time, report.end_time);
  }
  EXPECT_EQ(report.end_time,
            std::max(report.tenants[0].last_complete_time,
                     report.tenants[1].last_complete_time));
}

TEST(MultiTenantTest, MoreTenantsThanQueuePairsMultiplexes) {
  // Regression: the driver used to assert QueueCount() >= tenant count —
  // compiled out in release builds, where extra tenants silently drove
  // out-of-range queue ids. Tenants now multiplex (tenant i -> pair
  // i % queues) and completions are attributed by nsid, not queue.
  Ssd ssd(SmallSsd(), SimpleTree());
  SsdTarget target(ssd);

  std::vector<wl::TenantSpec> tenants;
  for (std::size_t i = 0; i < 5; ++i) {
    tenants.push_back(WriterTenant(
        "t" + std::to_string(i), static_cast<Lba>(40 * i), 8, 1000 * (i + 1),
        Microseconds(1000) + CostOf(i, 100), 300));
  }

  io::EngineConfig ecfg;
  ecfg.queue_count = 2;  // fewer pairs than tenants
  ecfg.queue.sq_depth = 4;
  io::IoEngine engine(target, ecfg);

  wl::MultiTenantDriver driver(std::move(tenants));
  wl::MultiTenantReport report = driver.Run(engine);

  ASSERT_EQ(report.status, wl::MultiTenantStatus::kOk);
  ASSERT_EQ(report.tenants.size(), 5u);
  SimTime now = ssd.Clock().Now();
  for (std::size_t i = 0; i < 5; ++i) {
    const wl::TenantResult& t = report.tenants[i];
    EXPECT_EQ(t.completed, 8u) << t.name;
    EXPECT_EQ(t.errors, 0u) << t.name;
    EXPECT_EQ(t.nsid, static_cast<std::uint32_t>(i) + 1);
    // Ring-sharing never mixes attribution: each tenant's stamps landed on
    // its own LBAs.
    for (Lba b = 0; b < 8; ++b) {
      ftl::FtlResult rd = ssd.Ftl().ReadPage(static_cast<Lba>(40 * i) + b, now);
      ASSERT_TRUE(rd.ok());
      EXPECT_EQ(rd.data.stamp, 1000 * (i + 1) + b);
    }
  }
}

TEST(MultiTenantTest, DuplicateNamespaceIsTypedRefusal) {
  Ssd ssd(SmallSsd(), SimpleTree());
  SsdTarget target(ssd);

  std::vector<wl::TenantSpec> tenants;
  tenants.push_back(WriterTenant("a", 0, 4, 1000, 1000, 100));
  tenants.push_back(WriterTenant("b", 100, 4, 2000, 1000, 100));
  tenants[0].nsid = 7;
  tenants[1].nsid = 7;  // collision: completions would be unattributable

  io::EngineConfig ecfg;
  ecfg.queue_count = 2;
  io::IoEngine engine(target, ecfg);

  wl::MultiTenantDriver driver(std::move(tenants));
  wl::MultiTenantReport report = driver.Run(engine);

  EXPECT_EQ(report.status, wl::MultiTenantStatus::kDuplicateNamespace);
  EXPECT_STREQ(wl::MultiTenantStatusName(report.status),
               "duplicate-namespace");
  // Refused up front: nothing was submitted, the report is a zero span.
  EXPECT_EQ(report.total_dispatched, 0u);
  EXPECT_EQ(report.end_time, report.first_submit_time);
  for (const wl::TenantResult& t : report.tenants) {
    EXPECT_EQ(t.submitted, 0u) << t.name;
  }
}

TEST(MultiTenantTest, SampleRingCapKeepsRunningStatsExact) {
  SsdConfig cfg = SmallSsd();
  cfg.ftl.latency = nand::LatencyModel{};  // nonzero latencies to aggregate
  Ssd ssd(cfg, SimpleTree());
  SsdTarget target(ssd);

  std::vector<wl::TenantSpec> tenants;
  tenants.push_back(WriterTenant("w", 0, 24, 0, 1000, 50));

  io::EngineConfig ecfg;
  ecfg.queue_count = 1;
  ecfg.queue.sq_depth = 8;
  io::IoEngine engine(target, ecfg);

  wl::MultiTenantOptions opts;
  opts.sample_limit = 6;
  wl::MultiTenantDriver driver(std::move(tenants), opts);
  wl::MultiTenantReport report = driver.Run(engine);

  const wl::TenantResult& t = report.tenants[0];
  EXPECT_EQ(t.completed, 24u);
  // The rings keep only the newest samples...
  EXPECT_EQ(t.latencies.size(), 6u);
  EXPECT_EQ(t.complete_times.size(), 6u);
  EXPECT_EQ(t.samples_dropped, 18u);
  // ...but the streaming aggregate saw every completion.
  EXPECT_EQ(t.latency_us.Count(), 24u);
  // The surviving window is the tail: its newest entry is the last
  // completion the run produced.
  EXPECT_EQ(t.complete_times.back(), t.last_complete_time);
}

TEST(MultiTenantTest, EmptyRunPinsEndTimeToZeroSpan) {
  Ssd ssd(SmallSsd(), SimpleTree());
  SsdTarget target(ssd);

  std::vector<wl::TenantSpec> tenants;
  wl::TenantSpec idle;
  idle.name = "idle";  // a tenant with no requests at all
  tenants.push_back(idle);

  io::EngineConfig ecfg;
  ecfg.queue_count = 1;
  io::IoEngine engine(target, ecfg);

  wl::MultiTenantDriver driver(std::move(tenants));
  wl::MultiTenantReport report = driver.Run(engine);

  // Regression: end_time stayed 0 while first_submit_time defaulted past
  // it, so the unsigned span underflowed and TotalIops reported garbage.
  EXPECT_EQ(report.status, wl::MultiTenantStatus::kOk);
  EXPECT_EQ(report.end_time, report.first_submit_time);
  EXPECT_EQ(report.TotalIops(), 0.0);
}

TEST(MultiTenantTest, InterleavedRansomwareStillRaisesAlarm) {
  InterleavedConfig cfg;
  cfg.benign_tenants = 3;
  cfg.ransomware = "WannaCry";
  cfg.duration = Seconds(30);
  cfg.ransom_start = Seconds(8);
  cfg.seed = 42;
  InterleavedResult r =
      RunInterleavedDetection(core::PretrainedTree(), cfg);

  EXPECT_TRUE(r.alarm);
  EXPECT_GE(r.max_score, cfg.detector.score_threshold);
  ASSERT_EQ(r.report.tenants.size(), 4u);
  EXPECT_TRUE(r.report.tenants.back().is_ransomware);
  // The attack was detected while it ran, not after.
  ASSERT_TRUE(r.alarm_time.has_value());
  EXPECT_GE(*r.alarm_time, cfg.ransom_start);
  EXPECT_GT(r.detection_latency, 0);
}

TEST(MultiTenantTest, BenignTenantsAloneStayBelowThreshold) {
  InterleavedConfig cfg;
  cfg.benign_tenants = 4;
  cfg.ransomware.clear();  // control run
  cfg.duration = Seconds(30);
  cfg.seed = 42;
  InterleavedResult r =
      RunInterleavedDetection(core::PretrainedTree(), cfg);

  EXPECT_FALSE(r.alarm);
  EXPECT_LT(r.max_score, cfg.detector.score_threshold);
  for (const wl::TenantResult& t : r.report.tenants) {
    EXPECT_EQ(t.errors, 0u) << t.name;
  }
}

}  // namespace
}  // namespace insider::host
