#include "host/fleet.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/detector_pool.h"
#include "host/ssd.h"
#include "host/ssd_target.h"
#include "io/io_engine.h"
#include "obs/metrics.h"
#include "workload/multi_tenant.h"

namespace insider::host {
namespace {

/// Tree voting ransomware iff OWIO > `threshold` (same shape as
/// ssd_test.cc). The fleet smoke tests raise the cut to 120: the in-place
/// encryptor overwrites 200+ blocks/slice while the heaviest benign app
/// (OsUpdate at noisy intensity) stays under 100.
core::DecisionTree OwioTree(double threshold = 30.0) {
  std::vector<core::DecisionTree::Node> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = core::FeatureId::kOwIo;
  nodes[0].threshold = threshold;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].is_leaf = true;
  nodes[1].label = false;
  nodes[2].is_leaf = true;
  nodes[2].label = true;
  return core::DecisionTree(std::move(nodes));
}

/// A tenant that read-then-overwrites `blocks` LBAs per 1-s slice for
/// `slices` slices: every write is one OWIO in the paper's feature model.
wl::TenantSpec OverwriteTenant(const std::string& name, Lba base,
                               std::uint32_t blocks, int slices,
                               std::uint64_t stamp_base) {
  wl::TenantSpec t;
  t.name = name;
  t.stamp_base = stamp_base;
  for (int s = 0; s < slices; ++s) {
    SimTime t0 = Seconds(s);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      t.requests.push_back({t0 + 10 + b, base + b, 1, IoMode::kRead});
    }
    for (std::uint32_t b = 0; b < blocks; ++b) {
      t.requests.push_back({t0 + 500'000 + b, base + b, 1, IoMode::kWrite});
    }
  }
  return t;
}

struct VictimOutcome {
  int score = 0;
  std::optional<SimTime> alarm;
};

/// Drive `tenants` through a 2-pair engine into one Ssd and report the
/// detector outcome of the tenant on namespace `nsid`.
VictimOutcome RunTenants(std::vector<wl::TenantSpec> tenants, bool per_ns,
                         core::NamespaceId nsid) {
  SsdConfig cfg;
  cfg.ftl.geometry = nand::Geometry::Seed();
  cfg.ftl.latency = nand::LatencyModel::Zero();
  cfg.detector_pool.per_namespace = per_ns;
  Ssd ssd(cfg, OwioTree());
  SsdTarget target(ssd);

  io::EngineConfig ecfg;
  ecfg.queue_count = 2;
  ecfg.queue.sq_depth = 8;
  io::IoEngine engine(target, ecfg);

  wl::MultiTenantDriver driver(std::move(tenants));
  wl::MultiTenantReport report = driver.Run(engine);
  EXPECT_EQ(report.status, wl::MultiTenantStatus::kOk);
  ssd.IdleUntil(Seconds(8));  // settle trailing slices

  VictimOutcome out;
  const core::Detector* d = ssd.Detectors().Peek(per_ns ? nsid : 0);
  if (d != nullptr) {
    out.score = d->Score();
    out.alarm = d->FirstAlarmTime();
  }
  return out;
}

TEST(FleetIsolationTest, PerNamespacePoolShieldsVictimFromNoisyNeighbor) {
  // The victim overwrites 40 blocks/slice — over the tree's threshold on
  // its own. Its detector outcome must be bit-identical whether or not a
  // noisy neighbor hammers the same device.
  std::vector<wl::TenantSpec> alone;
  alone.push_back(OverwriteTenant("victim", 0, 40, 5, 1000));
  VictimOutcome solo = RunTenants(std::move(alone), /*per_ns=*/true, 1);

  std::vector<wl::TenantSpec> crowd;
  crowd.push_back(OverwriteTenant("victim", 0, 40, 5, 1000));
  crowd.push_back(OverwriteTenant("noisy", 100'000, 25, 5, 2000));
  VictimOutcome shared_device = RunTenants(std::move(crowd), true, 1);

  ASSERT_TRUE(solo.alarm.has_value());
  ASSERT_TRUE(shared_device.alarm.has_value());
  EXPECT_EQ(*solo.alarm, *shared_device.alarm);
  EXPECT_EQ(solo.score, shared_device.score);
}

TEST(FleetIsolationTest, SharedDetectorCrossContaminates) {
  // Pinned legacy behavior: two benign-in-isolation streams (25 OWIO/slice
  // each, under the 30 threshold) merge in the seed's single shared
  // detector and fabricate an alarm neither stream earned...
  std::vector<wl::TenantSpec> pair;
  pair.push_back(OverwriteTenant("a", 0, 25, 5, 1000));
  pair.push_back(OverwriteTenant("b", 100'000, 25, 5, 2000));
  VictimOutcome shared = RunTenants(std::move(pair), /*per_ns=*/false, 1);
  EXPECT_TRUE(shared.alarm.has_value()) << "legacy contamination vanished?";

  // ...while the per-namespace pool keeps both below threshold.
  std::vector<wl::TenantSpec> pair2;
  pair2.push_back(OverwriteTenant("a", 0, 25, 5, 1000));
  pair2.push_back(OverwriteTenant("b", 100'000, 25, 5, 2000));
  VictimOutcome isolated_a = RunTenants(std::move(pair2), true, 1);
  EXPECT_FALSE(isolated_a.alarm.has_value());

  std::vector<wl::TenantSpec> pair3;
  pair3.push_back(OverwriteTenant("a", 0, 25, 5, 1000));
  pair3.push_back(OverwriteTenant("b", 100'000, 25, 5, 2000));
  VictimOutcome isolated_b = RunTenants(std::move(pair3), true, 2);
  EXPECT_FALSE(isolated_b.alarm.has_value());
}

FleetConfig SmokeFleet() {
  FleetConfig fc;
  fc.tenants = 8;
  // The in-place encryptor overwrites every victim block where it sits —
  // the one family whose OWIO burst is deterministic enough for a smoke
  // test against the single-feature tree.
  fc.families = {"InHouse.inplace"};
  fc.victim_fraction = 0.25;
  fc.noisy_fraction = 0.25;
  fc.noisy_intensity = 2.0;  // the smoke test checks plumbing, not fairness
  // Long enough for the in-place encryptor to produce >= score_threshold
  // voting slices (it chews ~50 files/s of modeled throughput).
  fc.duration = Seconds(8);
  fc.attack_start = Seconds(2);
  fc.queue_count = 4;
  fc.queue_weights = {1, 2};
  fc.fileset_files = 200;
  fc.ftl.geometry = nand::Geometry::Seed();
  fc.ftl.latency = nand::LatencyModel::Zero();
  fc.seed = 7;
  return fc;
}

TEST(FleetTest, RunFleetPopulatesDetectionMatrix) {
  obs::MetricsRegistry metrics;
  FleetConfig fc = SmokeFleet();
  fc.metrics = &metrics;
  FleetResult r = RunFleet(OwioTree(120.0), fc);

  ASSERT_EQ(r.status, wl::MultiTenantStatus::kOk);
  ASSERT_EQ(r.tenants.size(), fc.tenants);
  EXPECT_EQ(r.victims + r.benign, fc.tenants);
  EXPECT_GE(r.victims, 1u);
  // The in-place burst of overwrites trips the OWIO tree on every victim.
  EXPECT_EQ(r.detected_victims, r.victims);
  EXPECT_EQ(r.false_positives, 0u);

  std::set<std::uint32_t> nsids;
  for (std::size_t i = 0; i < r.tenants.size(); ++i) {
    const FleetTenantResult& t = r.tenants[i];
    EXPECT_TRUE(nsids.insert(t.nsid).second) << "duplicate nsid " << t.nsid;
    EXPECT_EQ(t.queue, i % fc.queue_count);
    EXPECT_EQ(t.weight, fc.queue_weights[t.queue % fc.queue_weights.size()]);
    EXPECT_GT(t.completed, 0u) << t.name;
    if (t.is_ransomware) {
      EXPECT_TRUE(t.detected) << t.name;
      EXPECT_GT(t.detection_latency, 0) << t.name;
    }
  }
  // One instance per tenant namespace plus the pinned default instance.
  EXPECT_EQ(r.pool_instances, fc.tenants + 1);
  EXPECT_TRUE(r.pool_within_budget);
  EXPECT_GT(r.total_dispatched, 0u);

  // Ssd mirrored the pool into the obs gauges.
  const auto& gauges = metrics.Gauges();
  auto it = gauges.find("detector.pool.instances");
  ASSERT_NE(it, gauges.end());
  EXPECT_EQ(it->second.Value(), static_cast<double>(r.pool_instances));
  EXPECT_NE(gauges.find("detector.pool.bytes"), gauges.end());
}

TEST(FleetTest, ShardedEngineMatchesSerialDetection) {
  FleetConfig fc = SmokeFleet();
  FleetResult serial = RunFleet(OwioTree(120.0), fc);
  fc.shard_threads = 2;
  FleetResult sharded = RunFleet(OwioTree(120.0), fc);

  ASSERT_EQ(serial.tenants.size(), sharded.tenants.size());
  EXPECT_EQ(serial.detected_victims, sharded.detected_victims);
  EXPECT_EQ(serial.false_positives, sharded.false_positives);
  for (std::size_t i = 0; i < serial.tenants.size(); ++i) {
    EXPECT_EQ(serial.tenants[i].detected, sharded.tenants[i].detected)
        << serial.tenants[i].name;
    EXPECT_EQ(serial.tenants[i].max_score, sharded.tenants[i].max_score)
        << serial.tenants[i].name;
  }
}

TEST(FleetTest, BudgetedFleetDegradesButKeepsDetecting) {
  FleetConfig fc = SmokeFleet();
  FleetResult unbounded = RunFleet(OwioTree(120.0), fc);
  ASSERT_GT(unbounded.pool_bytes, 0u);

  fc.pool.dram_budget_bytes = unbounded.pool_bytes / 4;
  FleetResult tight = RunFleet(OwioTree(120.0), fc);
  EXPECT_GT(tight.pool_pressure_events, 0u);
  EXPECT_TRUE(tight.pool_within_budget);
  EXPECT_LE(tight.pool_bytes, fc.pool.dram_budget_bytes);
  // Graceful: shrunken instances, same verdicts on this workload.
  EXPECT_EQ(tight.detected_victims, unbounded.detected_victims);
  EXPECT_EQ(tight.false_positives, unbounded.false_positives);
}

}  // namespace
}  // namespace insider::host
