#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/io.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/time.h"

namespace insider {
namespace {

TEST(SimClockTest, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0);
}

TEST(SimClockTest, AdvanceToMovesForward) {
  SimClock clock;
  clock.AdvanceTo(Seconds(3));
  EXPECT_EQ(clock.Now(), Seconds(3));
}

TEST(SimClockTest, AdvanceToNeverMovesBackwards) {
  SimClock clock;
  clock.AdvanceTo(Seconds(5));
  clock.AdvanceTo(Seconds(2));
  EXPECT_EQ(clock.Now(), Seconds(5));
}

TEST(SimClockTest, RelativeAdvance) {
  SimClock clock(Milliseconds(100));
  clock.Advance(Milliseconds(50));
  EXPECT_EQ(clock.Now(), Milliseconds(150));
}

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Seconds(1), 1'000'000);
  EXPECT_EQ(Milliseconds(1), 1'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(7)), 7.0);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a() != b()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    std::int64_t v = rng.Between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(5);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gaussian(2.0, 3.0));
  EXPECT_NEAR(stats.Mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.Stddev(), 3.0, 0.1);
}

TEST(RngTest, ParetoAtLeastScale) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(9);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continuation.
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (parent() != child()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RunningStatsTest, EmptyHasNoFabricatedMoments) {
  // An empty accumulator used to report Mean()/Min()/Max() == 0.0, which is
  // indistinguishable from a real measurement of zero. NaN is unambiguous
  // (and bench/json_writer.h already serializes non-finite values as null).
  RunningStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_TRUE(std::isnan(s.Mean()));
  EXPECT_TRUE(std::isnan(s.Min()));
  EXPECT_TRUE(std::isnan(s.Max()));
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a, b, combined;
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Gaussian(0, 1);
    (i % 2 ? a : b).Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_NEAR(a.Mean(), combined.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), combined.Variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.Min(), combined.Min());
  EXPECT_DOUBLE_EQ(a.Max(), combined.Max());
}

// Property: merging any partition of a stream is equivalent to accumulating
// the stream in one pass, within 1e-9 on every moment. Randomizes the split
// count, split points, and value distribution across seeds.
TEST(RunningStatsTest, MergeOfArbitrarySplitsMatchesSinglePass) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull);
    const std::size_t n = 100 + rng.Below(2000);
    std::vector<double> values(n);
    for (double& v : values) {
      // Mix of scales so the parallel-variance path sees hostile data.
      v = rng.Chance(0.5) ? rng.Gaussian(1e6, 50.0) : rng.Exponential(3.0);
    }

    RunningStats single;
    for (double v : values) single.Add(v);

    const std::size_t parts = 2 + rng.Below(7);
    std::vector<RunningStats> splits(parts);
    for (double v : values) splits[rng.Below(parts)].Add(v);
    RunningStats merged;
    for (const RunningStats& s : splits) merged.Merge(s);

    ASSERT_EQ(merged.Count(), single.Count()) << "seed " << seed;
    EXPECT_NEAR(merged.Mean(), single.Mean(),
                1e-9 * std::abs(single.Mean()) + 1e-9)
        << "seed " << seed;
    EXPECT_NEAR(merged.Variance(), single.Variance(),
                1e-9 * single.Variance() + 1e-9)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(merged.Min(), single.Min()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(merged.Max(), single.Max()) << "seed " << seed;
    EXPECT_NEAR(merged.Sum(), single.Sum(),
                1e-9 * std::abs(single.Sum()) + 1e-9)
        << "seed " << seed;
  }
}

TEST(HistogramTest, QuantilesOfUniformData) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 2.0);
}

TEST(HistogramTest, OutOfRangeSamplesAreCountedOutOfBand) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(50.0);
  EXPECT_EQ(h.TotalCount(), 2u);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 1u);
}

// Regression for the clamping bug: Add() used to clamp an out-of-range
// sample into the edge bucket and Quantile() then interpolated *inside*
// that bucket, inventing an in-range tail. A p99 that actually lands in the
// overflow mass must now saturate to the declared bound, with the overflow
// count reported, instead of producing a plausible-looking interior value.
TEST(HistogramTest, OverflowCannotFabricateAnInRangeTail) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(5.0);
  for (int i = 0; i < 5; ++i) h.Add(1e6);  // tail escapes the range entirely

  // 0.99 * 105 = 103.95 samples: past the 100 in-range ones, into overflow.
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);  // the bound, not an interior lie
  EXPECT_EQ(h.Overflow(), 5u);
  EXPECT_NE(h.ToString().find("overflow=5"), std::string::npos);
  // The in-range mass is untouched by the escaped tail.
  EXPECT_NEAR(h.Quantile(0.5), 5.5, 1.0);

  // Same story below the range.
  Histogram u(10.0, 20.0, 10);
  u.Add(-3.0);
  u.Add(15.0);
  EXPECT_DOUBLE_EQ(u.Quantile(0.01), 10.0);
  EXPECT_EQ(u.Underflow(), 1u);
}

TEST(PearsonCorrelationTest, PerfectPositive) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonCorrelationTest, PerfectNegative) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, ConstantSeriesIsZero) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(IoRequestTest, EqualityAndDefaults) {
  IoRequest a{Seconds(1), 100, 8, IoMode::kWrite};
  IoRequest b = a;
  EXPECT_EQ(a, b);
  b.lba = 101;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace insider
