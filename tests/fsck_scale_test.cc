// fsck at scale: a populated multi-hundred-file filesystem with combined
// corruption, and the repair idempotence property.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "common/rng.h"
#include "fs/file_system.h"
#include "fs/fsck.h"
#include "fs/layout.h"

namespace insider::fs {
namespace {

using BlockBuf = std::array<std::byte, kBlockSize>;

class FsckScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(FileSystem::Mkfs(dev_, 1024), FsStatus::kOk);
    auto fs = FileSystem::Mount(dev_);
    ASSERT_TRUE(fs.has_value());
    Rng rng(8);
    // A few hundred files across nested directories.
    for (int d = 0; d < 8; ++d) {
      std::string dir = "/dir" + std::to_string(d);
      ASSERT_EQ(fs->Mkdir(dir), FsStatus::kOk);
      for (int f = 0; f < 40; ++f) {
        std::string path = dir + "/f" + std::to_string(f);
        ASSERT_EQ(fs->CreateFile(path), FsStatus::kOk);
        std::vector<std::byte> data(1 + rng.Below(24 * 1024));
        for (auto& b : data) b = static_cast<std::byte>(rng.Below(256));
        ASSERT_EQ(fs->WriteFile(path, 0, data), FsStatus::kOk);
      }
    }
    SuperBlock::DeserializeFrom(ReadBlock(0), sb_);
  }

  std::span<const std::byte> ReadBlock(std::uint64_t lba) {
    dev_.ReadBlock(lba, buf_);
    return buf_;
  }
  void WriteBlock(std::uint64_t lba) { dev_.WriteBlock(lba, buf_); }

  MemBlockDevice dev_{32768};  // 128 MB
  BlockBuf buf_{};
  SuperBlock sb_;
};

TEST_F(FsckScaleTest, LargeCleanFilesystemPasses) {
  EXPECT_TRUE(Fsck(dev_, false).Clean());
}

TEST_F(FsckScaleTest, CombinedCorruptionAllRepairedInOnePass) {
  // Inject several corruption classes at once, like a real crash would.
  //  (a) Stale superblock counters.
  sb_.free_blocks += 100;
  sb_.free_inodes += 5;
  buf_.fill(std::byte{0});
  sb_.SerializeTo(buf_);
  WriteBlock(0);
  //  (b) Flipped bitmap bits.
  dev_.ReadBlock(sb_.bitmap_start, buf_);
  for (std::uint64_t bit : {7u, 99u, 5000u}) {
    buf_[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
  }
  WriteBlock(sb_.bitmap_start);
  //  (c) A corrupted inode block count + an orphan.
  dev_.ReadBlock(sb_.inode_start, buf_);
  Inode n = Inode::DeserializeFrom(
      std::span<const std::byte>(buf_).subspan(3 * kInodeSize, kInodeSize));
  n.block_count += 9;
  n.SerializeTo(std::span<std::byte>(buf_).subspan(3 * kInodeSize,
                                                   kInodeSize));
  WriteBlock(sb_.inode_start);
  //  (d) An orphan in a far inode-table block (inode 900 is unused: only
  //  ~330 of the 1024 inodes are allocated).
  dev_.ReadBlock(sb_.inode_start + 900 / kInodesPerBlock, buf_);
  Inode orphan;
  orphan.mode = InodeMode::kFile;
  orphan.links = 1;
  orphan.SerializeTo(std::span<std::byte>(buf_).subspan(
      (900 % kInodesPerBlock) * kInodeSize, kInodeSize));
  WriteBlock(sb_.inode_start + 900 / kInodesPerBlock);

  FsckReport before = Fsck(dev_, false);
  EXPECT_FALSE(before.Clean());
  EXPECT_EQ(before.wrong_free_block_count, 1u);
  EXPECT_GE(before.bitmap_mismatches, 3u);
  EXPECT_GE(before.wrong_inode_block_count, 1u);
  EXPECT_GE(before.orphan_inodes, 1u);

  Fsck(dev_, true);
  EXPECT_TRUE(Fsck(dev_, false).Clean());
}

TEST_F(FsckScaleTest, RepairIsIdempotent) {
  sb_.free_blocks = 1;
  buf_.fill(std::byte{0});
  sb_.SerializeTo(buf_);
  WriteBlock(0);
  Fsck(dev_, true);
  FsckReport second = Fsck(dev_, true);  // repairing a clean FS
  EXPECT_TRUE(second.Clean());
  EXPECT_TRUE(Fsck(dev_, false).Clean());
}

TEST_F(FsckScaleTest, AllFilesReadableAfterCombinedRepair) {
  sb_.free_blocks += 77;
  buf_.fill(std::byte{0});
  sb_.SerializeTo(buf_);
  WriteBlock(0);
  Fsck(dev_, true);
  auto fs = FileSystem::Mount(dev_);
  ASSERT_TRUE(fs.has_value());
  int files = 0;
  for (int d = 0; d < 8; ++d) {
    std::vector<std::string> names;
    ASSERT_EQ(fs->ListDir("/dir" + std::to_string(d), names), FsStatus::kOk);
    files += static_cast<int>(names.size());
  }
  EXPECT_EQ(files, 320);
}

}  // namespace
}  // namespace insider::fs
