// Filesystem edge cases: indirect-boundary addressing, path handling,
// sparse extremes, and error paths.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "fs/file_system.h"

namespace insider::fs {
namespace {

std::vector<std::byte> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed + i * 7) & 0xFF);
  }
  return out;
}

class FsEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(FileSystem::Mkfs(dev_, 64), FsStatus::kOk);
    auto fs = FileSystem::Mount(dev_);
    ASSERT_TRUE(fs.has_value());
    fs_.emplace(std::move(*fs));
  }

  MemBlockDevice dev_{16384};  // 64 MB
  std::optional<FileSystem> fs_;
};

TEST_F(FsEdgeTest, WriteExactlyAtDirectIndirectBoundary) {
  // File block 11 is the last direct pointer; block 12 the first indirect.
  ASSERT_EQ(fs_->CreateFile("/b"), FsStatus::kOk);
  auto data = Pattern(2 * kBlockSize, 1);
  std::uint64_t offset = (kDirectPointers - 1) * kBlockSize;
  ASSERT_EQ(fs_->WriteFile("/b", offset, data), FsStatus::kOk);
  std::vector<std::byte> out(data.size());
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/b", offset, out, &n), FsStatus::kOk);
  EXPECT_EQ(out, data);
}

TEST_F(FsEdgeTest, WriteAtIndirectDoubleIndirectBoundary) {
  ASSERT_EQ(fs_->CreateFile("/b"), FsStatus::kOk);
  auto data = Pattern(2 * kBlockSize, 2);
  std::uint64_t boundary_block = kDirectPointers + kPointersPerBlock;
  std::uint64_t offset = (boundary_block - 1) * kBlockSize;
  ASSERT_EQ(fs_->WriteFile("/b", offset, data), FsStatus::kOk);
  std::vector<std::byte> out(data.size());
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/b", offset, out, &n), FsStatus::kOk);
  EXPECT_EQ(out, data);
  // The hole before the data reads as zeros and costs no blocks beyond
  // pointer blocks.
  std::vector<std::byte> hole(kBlockSize);
  ASSERT_EQ(fs_->ReadFile("/b", 5 * kBlockSize, hole, &n), FsStatus::kOk);
  for (std::byte b : hole) EXPECT_EQ(b, std::byte{0});
}

TEST_F(FsEdgeTest, UnalignedWritesPreserveNeighbors) {
  ASSERT_EQ(fs_->CreateFile("/u"), FsStatus::kOk);
  auto base = Pattern(3 * kBlockSize, 3);
  ASSERT_EQ(fs_->WriteFile("/u", 0, base), FsStatus::kOk);
  // Overwrite 100 bytes straddling the block-1/block-2 boundary.
  auto patch = Pattern(100, 9);
  std::uint64_t off = 2 * kBlockSize - 50;
  ASSERT_EQ(fs_->WriteFile("/u", off, patch), FsStatus::kOk);
  std::vector<std::byte> out(base.size());
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/u", 0, out, &n), FsStatus::kOk);
  std::vector<std::byte> expect = base;
  std::memcpy(expect.data() + off, patch.data(), patch.size());
  EXPECT_EQ(out, expect);
}

TEST_F(FsEdgeTest, PathNormalization) {
  ASSERT_EQ(fs_->Mkdir("/d"), FsStatus::kOk);
  ASSERT_EQ(fs_->CreateFile("/d/f"), FsStatus::kOk);
  EXPECT_TRUE(fs_->Exists("//d//f"));
  EXPECT_TRUE(fs_->Exists("/d/f/"));
  EXPECT_TRUE(fs_->Exists("d/f"));
}

TEST_F(FsEdgeTest, RootCannotBeCreatedOrRemoved) {
  EXPECT_EQ(fs_->CreateFile("/"), FsStatus::kExists);
  EXPECT_EQ(fs_->Mkdir("/"), FsStatus::kExists);
  EXPECT_EQ(fs_->Rmdir("/"), FsStatus::kBadPath);
}

TEST_F(FsEdgeTest, FileAndDirNamespaceInteractions) {
  ASSERT_EQ(fs_->CreateFile("/x"), FsStatus::kOk);
  EXPECT_EQ(fs_->Mkdir("/x"), FsStatus::kExists);
  EXPECT_EQ(fs_->Rmdir("/x"), FsStatus::kNotDir);
  EXPECT_EQ(fs_->CreateFile("/x/y"), FsStatus::kNotFound);  // not a dir
  ASSERT_EQ(fs_->Mkdir("/d"), FsStatus::kOk);
  EXPECT_EQ(fs_->Unlink("/d"), FsStatus::kIsDir);
  EXPECT_EQ(fs_->WriteFile("/d", 0, Pattern(10, 1)), FsStatus::kIsDir);
}

TEST_F(FsEdgeTest, MissingIntermediateDirectory) {
  EXPECT_EQ(fs_->CreateFile("/no/such/dir/f"), FsStatus::kNotFound);
  std::vector<std::string> names;
  EXPECT_EQ(fs_->ListDir("/nope", names), FsStatus::kNotFound);
}

TEST_F(FsEdgeTest, TruncateGrowsSparsely) {
  ASSERT_EQ(fs_->CreateFile("/s"), FsStatus::kOk);
  std::uint64_t free0 = fs_->FreeBlocks();
  ASSERT_EQ(fs_->Truncate("/s", 100 * kBlockSize), FsStatus::kOk);
  EXPECT_EQ(fs_->FileSize("/s"), 100 * kBlockSize);
  EXPECT_EQ(fs_->FreeBlocks(), free0);  // no data blocks allocated
  std::vector<std::byte> out(kBlockSize);
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/s", 50 * kBlockSize, out, &n), FsStatus::kOk);
  EXPECT_EQ(n, kBlockSize);
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST_F(FsEdgeTest, TruncateAcrossIndirectBoundaryFreesPointerBlocks) {
  ASSERT_EQ(fs_->CreateFile("/t"), FsStatus::kOk);
  Rng rng(4);
  std::uint64_t big = (kDirectPointers + 40) * kBlockSize;
  std::vector<std::byte> data(big);
  for (auto& b : data) b = static_cast<std::byte>(rng.Below(256));
  ASSERT_EQ(fs_->WriteFile("/t", 0, data), FsStatus::kOk);
  std::uint64_t free_before = fs_->FreeBlocks();
  // Shrink below the direct-pointer boundary: data blocks AND the indirect
  // pointer block come back.
  ASSERT_EQ(fs_->Truncate("/t", 4 * kBlockSize), FsStatus::kOk);
  EXPECT_EQ(fs_->FreeBlocks(), free_before + 40 + (kDirectPointers - 4) + 1);
  std::vector<std::byte> out(4 * kBlockSize);
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/t", 0, out, &n), FsStatus::kOk);
  EXPECT_TRUE(std::memcmp(out.data(), data.data(), out.size()) == 0);
}

TEST_F(FsEdgeTest, TooBigWriteRejected) {
  ASSERT_EQ(fs_->CreateFile("/m"), FsStatus::kOk);
  std::vector<std::byte> tiny(16);
  EXPECT_EQ(fs_->WriteFile("/m", Inode::MaxFileSize(), tiny),
            FsStatus::kTooBig);
  EXPECT_EQ(fs_->Truncate("/m", Inode::MaxFileSize() + 1), FsStatus::kTooBig);
}

TEST_F(FsEdgeTest, ZeroByteOperations) {
  ASSERT_EQ(fs_->CreateFile("/z"), FsStatus::kOk);
  std::vector<std::byte> empty;
  EXPECT_EQ(fs_->WriteFile("/z", 0, empty), FsStatus::kOk);
  EXPECT_EQ(fs_->FileSize("/z"), 0u);
  std::uint64_t n = 99;
  EXPECT_EQ(fs_->ReadFile("/z", 0, empty, &n), FsStatus::kOk);
  EXPECT_EQ(n, 0u);
}

TEST_F(FsEdgeTest, DeepDirectoryNesting) {
  std::string path;
  for (int depth = 0; depth < 12; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_EQ(fs_->Mkdir(path), FsStatus::kOk) << path;
  }
  std::string file = path + "/leaf";
  ASSERT_EQ(fs_->CreateFile(file), FsStatus::kOk);
  auto data = Pattern(1000, 5);
  ASSERT_EQ(fs_->WriteFile(file, 0, data), FsStatus::kOk);
  std::vector<std::byte> out(data.size());
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile(file, 0, out, &n), FsStatus::kOk);
  EXPECT_EQ(out, data);
}

TEST_F(FsEdgeTest, MaxLengthNameWorks) {
  std::string name(kMaxNameLen, 'n');
  ASSERT_EQ(fs_->CreateFile("/" + name), FsStatus::kOk);
  EXPECT_TRUE(fs_->Exists("/" + name));
  EXPECT_EQ(fs_->CreateFile("/" + name + "x"), FsStatus::kNameTooLong);
}

}  // namespace
}  // namespace insider::fs
