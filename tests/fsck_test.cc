#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "common/rng.h"
#include "fs/file_system.h"
#include "fs/fsck.h"
#include "fs/layout.h"

namespace insider::fs {
namespace {

using BlockBuf = std::array<std::byte, kBlockSize>;

class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(FileSystem::Mkfs(dev_, 64), FsStatus::kOk);
    auto fs = FileSystem::Mount(dev_);
    ASSERT_TRUE(fs.has_value());
    Rng rng(12);
    for (int i = 0; i < 5; ++i) {
      std::string path = "/f" + std::to_string(i);
      ASSERT_EQ(fs->CreateFile(path), FsStatus::kOk);
      std::vector<std::byte> data(static_cast<std::size_t>(i + 1) * kBlockSize);
      for (auto& b : data) b = static_cast<std::byte>(rng.Below(256));
      ASSERT_EQ(fs->WriteFile(path, 0, data), FsStatus::kOk);
    }
    SuperBlock::DeserializeFrom(ReadBlock(0), sb_);
  }

  std::span<const std::byte> ReadBlock(std::uint64_t lba) {
    dev_.ReadBlock(lba, buf_);
    return buf_;
  }
  void WriteBlock(std::uint64_t lba) { dev_.WriteBlock(lba, buf_); }

  MemBlockDevice dev_{2048};
  BlockBuf buf_{};
  SuperBlock sb_;
};

TEST_F(FsckTest, CleanFilesystemPasses) {
  FsckReport r = Fsck(dev_, false);
  EXPECT_TRUE(r.Clean()) << r.ToString();
}

TEST_F(FsckTest, InvalidSuperblockDetected) {
  buf_.fill(std::byte{0});
  WriteBlock(0);
  FsckReport r = Fsck(dev_, false);
  EXPECT_FALSE(r.valid_superblock);
  EXPECT_FALSE(r.Clean());
}

TEST_F(FsckTest, WrongFreeBlockCountDetectedAndRepaired) {
  sb_.free_blocks += 7;
  buf_.fill(std::byte{0});
  sb_.SerializeTo(buf_);
  WriteBlock(0);
  FsckReport r = Fsck(dev_, false);
  EXPECT_EQ(r.wrong_free_block_count, 1u);
  Fsck(dev_, true);
  EXPECT_TRUE(Fsck(dev_, false).Clean());
}

TEST_F(FsckTest, WrongFreeInodeCountDetectedAndRepaired) {
  sb_.free_inodes += 3;
  buf_.fill(std::byte{0});
  sb_.SerializeTo(buf_);
  WriteBlock(0);
  FsckReport r = Fsck(dev_, false);
  EXPECT_EQ(r.wrong_free_inode_count, 1u);
  Fsck(dev_, true);
  EXPECT_TRUE(Fsck(dev_, false).Clean());
}

TEST_F(FsckTest, WrongInodeBlockCountDetectedAndRepaired) {
  // Corrupt the block_count of inode 1 (file /f0).
  dev_.ReadBlock(sb_.inode_start, buf_);
  Inode n = Inode::DeserializeFrom(
      std::span<const std::byte>(buf_).subspan(kInodeSize, kInodeSize));
  ASSERT_EQ(n.mode, InodeMode::kFile);
  n.block_count += 5;
  n.SerializeTo(std::span<std::byte>(buf_).subspan(kInodeSize, kInodeSize));
  WriteBlock(sb_.inode_start);
  FsckReport r = Fsck(dev_, false);
  EXPECT_EQ(r.wrong_inode_block_count, 1u);
  Fsck(dev_, true);
  EXPECT_TRUE(Fsck(dev_, false).Clean());
}

TEST_F(FsckTest, BitmapMismatchDetectedAndRepaired) {
  // Flip a free data block's bit to "used".
  dev_.ReadBlock(sb_.bitmap_start, buf_);
  std::uint64_t victim = sb_.total_blocks - 1;
  buf_[victim / 8] |=
      std::byte{static_cast<unsigned char>(1u << (victim % 8))};
  WriteBlock(sb_.bitmap_start);
  FsckReport r = Fsck(dev_, false);
  EXPECT_GE(r.bitmap_mismatches, 1u);
  Fsck(dev_, true);
  EXPECT_TRUE(Fsck(dev_, false).Clean());
}

TEST_F(FsckTest, DanglingDirEntryDetectedAndRepaired) {
  // Free inode 1 behind the directory's back.
  dev_.ReadBlock(sb_.inode_start, buf_);
  Inode freed;
  freed.SerializeTo(std::span<std::byte>(buf_).subspan(kInodeSize, kInodeSize));
  WriteBlock(sb_.inode_start);
  FsckReport r = Fsck(dev_, false);
  EXPECT_GE(r.dangling_dir_entries, 1u);
  Fsck(dev_, true);
  EXPECT_TRUE(Fsck(dev_, false).Clean());
  // The entry is gone after repair.
  auto fs = FileSystem::Mount(dev_);
  ASSERT_TRUE(fs.has_value());
  EXPECT_FALSE(fs->Exists("/f0"));
}

TEST_F(FsckTest, OrphanInodeDetectedAndRepaired) {
  // Allocate an inode in the table that no directory references.
  dev_.ReadBlock(sb_.inode_start, buf_);
  Inode orphan;
  orphan.mode = InodeMode::kFile;
  orphan.links = 1;
  orphan.SerializeTo(
      std::span<std::byte>(buf_).subspan(10 * kInodeSize, kInodeSize));
  WriteBlock(sb_.inode_start);
  FsckReport r = Fsck(dev_, false);
  EXPECT_EQ(r.orphan_inodes, 1u);
  Fsck(dev_, true);
  EXPECT_TRUE(Fsck(dev_, false).Clean());
}

TEST_F(FsckTest, BadPointerDetectedAndRepaired) {
  // Point inode 1's first direct block outside the device.
  dev_.ReadBlock(sb_.inode_start, buf_);
  Inode n = Inode::DeserializeFrom(
      std::span<const std::byte>(buf_).subspan(kInodeSize, kInodeSize));
  n.direct[0] = 0x00FFFFFF;
  n.SerializeTo(std::span<std::byte>(buf_).subspan(kInodeSize, kInodeSize));
  WriteBlock(sb_.inode_start);
  FsckReport r = Fsck(dev_, false);
  EXPECT_GE(r.bad_pointers, 1u);
  Fsck(dev_, true);
  EXPECT_TRUE(Fsck(dev_, false).Clean());
}

TEST_F(FsckTest, DoubleClaimedBlockDetectedAndRepaired) {
  // Make inode 2 claim inode 1's first block as well.
  dev_.ReadBlock(sb_.inode_start, buf_);
  Inode a = Inode::DeserializeFrom(
      std::span<const std::byte>(buf_).subspan(kInodeSize, kInodeSize));
  Inode b = Inode::DeserializeFrom(
      std::span<const std::byte>(buf_).subspan(2 * kInodeSize, kInodeSize));
  b.direct[1] = a.direct[0];
  b.SerializeTo(std::span<std::byte>(buf_).subspan(2 * kInodeSize, kInodeSize));
  WriteBlock(sb_.inode_start);
  FsckReport r = Fsck(dev_, false);
  EXPECT_GE(r.double_claimed_blocks, 1u);
  Fsck(dev_, true);
  EXPECT_TRUE(Fsck(dev_, false).Clean());
}

TEST_F(FsckTest, RepairPreservesIntactFileContents) {
  // Introduce superblock + bitmap corruption, repair, and verify /f2's
  // bytes are untouched.
  std::vector<std::byte> before(3 * kBlockSize);
  {
    auto fs = FileSystem::Mount(dev_);
    ASSERT_TRUE(fs.has_value());
    std::uint64_t n = 0;
    ASSERT_EQ(fs->ReadFile("/f2", 0, before, &n), FsStatus::kOk);
  }
  sb_.free_blocks = 1;
  buf_.fill(std::byte{0});
  sb_.SerializeTo(buf_);
  WriteBlock(0);
  Fsck(dev_, true);
  EXPECT_TRUE(Fsck(dev_, false).Clean());
  auto fs = FileSystem::Mount(dev_);
  ASSERT_TRUE(fs.has_value());
  std::vector<std::byte> after(before.size());
  std::uint64_t n = 0;
  ASSERT_EQ(fs->ReadFile("/f2", 0, after, &n), FsStatus::kOk);
  EXPECT_EQ(after, before);
}

}  // namespace
}  // namespace insider::fs
