#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "workload/apps.h"
#include "workload/file_set.h"
#include "workload/mixer.h"
#include "workload/ransomware.h"
#include "workload/trace.h"

namespace insider::wl {
namespace {

TEST(FileSetTest, GeneratesRequestedFiles) {
  Rng rng(1);
  FileSet::Params p;
  p.file_count = 500;
  FileSet fs = FileSet::Generate(p, rng);
  EXPECT_EQ(fs.FileCount(), 500u);
  EXPECT_GT(fs.TotalBlocks(), 0u);
  EXPECT_LE(fs.EndLba(), p.region_start + p.region_blocks);
}

TEST(FileSetTest, ExtentsDoNotOverlap) {
  Rng rng(2);
  FileSet::Params p;
  p.file_count = 300;
  p.fragmentation = 0.5;
  FileSet fs = FileSet::Generate(p, rng);
  std::unordered_set<Lba> seen;
  for (const FileInfo& f : fs.Files()) {
    std::uint32_t total = 0;
    for (const FileExtent& e : f.extents) {
      total += e.blocks;
      for (Lba b = e.start; b < e.start + e.blocks; ++b) {
        EXPECT_TRUE(seen.insert(b).second) << "block " << b << " reused";
      }
    }
    EXPECT_EQ(total, f.total_blocks);
  }
}

TEST(FileSetTest, DeterministicForSeed) {
  FileSet::Params p;
  p.file_count = 100;
  Rng a(7), b(7);
  FileSet fa = FileSet::Generate(p, a);
  FileSet fb = FileSet::Generate(p, b);
  ASSERT_EQ(fa.FileCount(), fb.FileCount());
  for (std::size_t i = 0; i < fa.FileCount(); ++i) {
    EXPECT_EQ(fa.Files()[i].total_blocks, fb.Files()[i].total_blocks);
  }
}

TEST(RansomwareTest, AllFamiliesHaveProfiles) {
  for (const std::string& name : AllRansomwareNames()) {
    RansomwareProfile p = RansomwareProfileByName(name);
    EXPECT_EQ(p.name, name);
    EXPECT_GT(p.encrypt_rate_mbps, 0.0);
  }
  EXPECT_THROW(RansomwareProfileByName("NotARansomware"),
               std::invalid_argument);
}

class RansomwareTraceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RansomwareTraceTest, ReadsBeforeOverwrites) {
  Rng rng(5);
  FileSet::Params fp;
  fp.file_count = 50;
  FileSet files = FileSet::Generate(fp, rng);
  RansomwareProfile profile = RansomwareProfileByName(GetParam());
  RansomwareRunParams rp;
  rp.start_time = Seconds(1);
  rp.scratch_start = 1 << 21;
  RansomwareTrace trace = GenerateRansomware(profile, files, rp, rng);

  ASSERT_FALSE(trace.requests.empty());
  EXPECT_GE(trace.active_begin, Seconds(1));
  EXPECT_EQ(trace.files_attacked, 50u);

  // Time-sorted; every overwrite of a victim block follows a read of it.
  std::unordered_set<Lba> read_blocks;
  std::uint64_t victim_overwrites = 0;
  SimTime prev = 0;
  for (const IoRequest& r : trace.requests) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
    for (std::uint32_t i = 0; i < r.length; ++i) {
      Lba b = r.lba + i;
      if (r.mode == IoMode::kRead) {
        read_blocks.insert(b);
      } else if (r.mode == IoMode::kWrite && b < rp.scratch_start) {
        EXPECT_TRUE(read_blocks.contains(b))
            << "victim block overwritten without read";
        ++victim_overwrites;
      }
    }
  }
  EXPECT_EQ(victim_overwrites, trace.blocks_encrypted);
}

INSTANTIATE_TEST_SUITE_P(Families, RansomwareTraceTest,
                         ::testing::Values("WannaCry", "Mole", "Jaff",
                                           "CryptoShield", "Locky.bbs",
                                           "Zerber.ufb", "GlobeImposter",
                                           "InHouse.inplace",
                                           "InHouse.outplace"));

TEST(RansomwareTest, OutOfPlaceWritesToScratchAndTrims) {
  Rng rng(5);
  FileSet::Params fp;
  fp.file_count = 20;
  FileSet files = FileSet::Generate(fp, rng);
  RansomwareRunParams rp;
  rp.scratch_start = 1 << 21;
  RansomwareTrace trace = GenerateRansomware(
      RansomwareProfileByName("WannaCry"), files, rp, rng);
  bool scratch_write = false, trim = false;
  for (const IoRequest& r : trace.requests) {
    if (r.mode == IoMode::kWrite && r.lba >= rp.scratch_start) {
      scratch_write = true;
    }
    if (r.mode == IoMode::kTrim) trim = true;
  }
  EXPECT_TRUE(scratch_write);
  EXPECT_TRUE(trim);
}

TEST(RansomwareTest, FastFamiliesOutpaceSlowOnes) {
  Rng rng(5);
  FileSet::Params fp;
  fp.file_count = 2000;  // enough data that Jaff can't finish in 30 s
  FileSet files = FileSet::Generate(fp, rng);
  RansomwareRunParams rp;
  rp.scratch_start = 1 << 21;
  rp.max_duration = Seconds(30);
  auto blocks_in_30s = [&](const char* name) {
    Rng r(5);
    return GenerateRansomware(RansomwareProfileByName(name), files, rp, r)
        .blocks_encrypted;
  };
  EXPECT_GT(blocks_in_30s("WannaCry"), 3 * blocks_in_30s("Jaff"));
}

TEST(RansomwareTest, SlowdownStretchesTheAttack) {
  Rng rng(5);
  FileSet::Params fp;
  fp.file_count = 100;
  FileSet files = FileSet::Generate(fp, rng);
  RansomwareProfile p = RansomwareProfileByName("Mole");
  RansomwareRunParams rp;
  rp.scratch_start = 1 << 21;
  Rng r1(5), r2(5);
  RansomwareTrace fast = GenerateRansomware(p, files, rp, r1);
  p.slowdown = 4.0;
  RansomwareTrace slow = GenerateRansomware(p, files, rp, r2);
  EXPECT_GT(slow.active_end - slow.active_begin,
            2 * (fast.active_end - fast.active_begin));
}

TEST(RansomwareTest, MaxFilesLimitsScope) {
  Rng rng(5);
  FileSet::Params fp;
  fp.file_count = 100;
  FileSet files = FileSet::Generate(fp, rng);
  RansomwareRunParams rp;
  rp.max_files = 10;
  RansomwareTrace t = GenerateRansomware(RansomwareProfileByName("Mole"),
                                         files, rp, rng);
  EXPECT_EQ(t.files_attacked, 10u);
}

class AppTraceTest : public ::testing::TestWithParam<AppKind> {};

TEST_P(AppTraceTest, ProducesSortedBoundedRequests) {
  AppParams p;
  p.duration = Seconds(10);
  p.region_start = 1000;
  p.region_blocks = 1 << 16;
  Rng rng(11);
  AppTrace t = GenerateApp(GetParam(), p, rng);
  ASSERT_FALSE(t.requests.empty()) << t.name;
  SimTime prev = 0;
  for (const IoRequest& r : t.requests) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
    EXPECT_GE(r.lba, p.region_start);
    EXPECT_LE(r.lba + r.length, p.region_start + p.region_blocks);
    EXPECT_GT(r.length, 0u);
  }
  EXPECT_LE(prev, p.start_time + p.duration + Seconds(1));
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppTraceTest,
    ::testing::ValuesIn(AllAppKinds()),
    [](const ::testing::TestParamInfo<AppKind>& param_info) {
      return AppKindName(param_info.param);
    });

TEST(AppTest, CategoriesMatchTableI) {
  EXPECT_EQ(CategoryOf(AppKind::kDataWiping), AppCategory::kHeavyOverwriting);
  EXPECT_EQ(CategoryOf(AppKind::kDatabase), AppCategory::kHeavyOverwriting);
  EXPECT_EQ(CategoryOf(AppKind::kIoStress), AppCategory::kIoIntensive);
  EXPECT_EQ(CategoryOf(AppKind::kCompression), AppCategory::kCpuIntensive);
  EXPECT_EQ(CategoryOf(AppKind::kWebSurfing), AppCategory::kNormal);
  EXPECT_EQ(CategoryOf(AppKind::kNone), AppCategory::kNone);
}

TEST(AppTest, NameRoundTrip) {
  for (AppKind k : AllAppKinds()) {
    EXPECT_EQ(AppKindByName(AppKindName(k)), k);
  }
  EXPECT_THROW(AppKindByName("Nope"), std::invalid_argument);
}

TEST(AppTest, WipingWritesDwarfItsReads) {
  AppParams p;
  p.duration = Seconds(60);  // many full wipe cycles, so the ratio settles
  Rng rng(3);
  AppTrace t = GenerateApp(AppKind::kDataWiping, p, rng);
  std::uint64_t reads = 0, writes = 0;
  for (const IoRequest& r : t.requests) {
    if (r.mode == IoMode::kRead) reads += r.length;
    if (r.mode == IoMode::kWrite) writes += r.length;
  }
  // Seven write passes per read pass.
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(reads), 7.0,
              0.5);
}

TEST(AppTest, P2pWritesBeforeVerifyReads) {
  AppParams p;
  p.duration = Seconds(5);
  Rng rng(3);
  AppTrace t = GenerateApp(AppKind::kP2pDownload, p, rng);
  // Hash-check reads happen after the piece is written, never before, so
  // P2P generates (almost) no overwrites in the paper's sense.
  std::unordered_set<Lba> written;
  std::uint64_t reads_before_write = 0;
  for (const IoRequest& r : t.requests) {
    for (std::uint32_t i = 0; i < r.length; ++i) {
      if (r.mode == IoMode::kWrite) written.insert(r.lba + i);
      if (r.mode == IoMode::kRead && !written.contains(r.lba + i)) {
        ++reads_before_write;
      }
    }
  }
  EXPECT_EQ(reads_before_write, 0u);
}

TEST(MixerTest, MergePreservesOrderAndTags) {
  std::vector<IoRequest> a{{1000, 1, 1, IoMode::kRead},
                           {3000, 2, 1, IoMode::kRead}};
  std::vector<IoRequest> b{{2000, 3, 1, IoMode::kWrite}};
  std::vector<TaggedRequest> merged = Merge2(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].request.lba, 1u);
  EXPECT_EQ(merged[0].source, 0u);
  EXPECT_EQ(merged[1].request.lba, 3u);
  EXPECT_EQ(merged[1].source, 1u);
  EXPECT_EQ(merged[2].request.lba, 2u);
}

TEST(MixerTest, TieBreaksBySource) {
  std::vector<IoRequest> a{{1000, 1, 1, IoMode::kRead}};
  std::vector<IoRequest> b{{1000, 2, 1, IoMode::kRead}};
  std::vector<TaggedRequest> merged = Merge2(a, b);
  EXPECT_EQ(merged[0].source, 0u);
  EXPECT_EQ(merged[1].source, 1u);
}

TEST(MixerTest, UntagStripsSources) {
  std::vector<IoRequest> a{{1000, 1, 1, IoMode::kRead}};
  std::vector<IoRequest> b{{500, 2, 1, IoMode::kWrite}};
  std::vector<IoRequest> flat = Untag(Merge2(a, b));
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat[0].lba, 2u);
}

TEST(TraceTest, RoundTripThroughText) {
  std::vector<IoRequest> reqs{{1000, 5, 8, IoMode::kRead},
                              {2000, 9, 1, IoMode::kWrite},
                              {3000, 9, 1, IoMode::kTrim}};
  std::ostringstream os;
  WriteTrace(os, reqs);
  std::istringstream is(os.str());
  EXPECT_EQ(ReadTrace(is), reqs);
}

TEST(TraceTest, FileRoundTrip) {
  std::vector<IoRequest> reqs;
  Rng rng(9);
  SimTime t = 0;
  for (int i = 0; i < 500; ++i) {
    t += rng.BelowTime(5000);
    reqs.push_back({t, rng.Below(1 << 20),
                    1 + static_cast<std::uint32_t>(rng.Below(64)),
                    rng.Chance(0.5) ? IoMode::kWrite : IoMode::kRead});
  }
  std::string path = ::testing::TempDir() + "/roundtrip.trace";
  ASSERT_TRUE(SaveTraceFile(path, reqs));
  EXPECT_EQ(LoadTraceFile(path), reqs);
}

TEST(TraceTest, LoadMissingFileYieldsEmpty) {
  EXPECT_TRUE(LoadTraceFile("/nonexistent/definitely/missing.trace").empty());
}

TEST(TraceTest, RejectsMalformedInput) {
  std::istringstream no_header("1 2 3 R\n");
  EXPECT_THROW(ReadTrace(no_header), std::invalid_argument);
  std::istringstream bad_mode("# insider-trace v1\n1 2 3 X\n");
  EXPECT_THROW(ReadTrace(bad_mode), std::invalid_argument);
  std::istringstream unsorted("# insider-trace v1\n5 1 1 R\n1 1 1 R\n");
  EXPECT_THROW(ReadTrace(unsorted), std::invalid_argument);
}

}  // namespace
}  // namespace insider::wl
