// End-to-end tests spanning workload -> detector -> FTL -> recovery ->
// filesystem, i.e., miniature versions of the paper's experiments.
#include <gtest/gtest.h>

#include "core/pretrained.h"
#include "host/experiment.h"
#include "host/scenario.h"
#include "host/train.h"

namespace insider::host {
namespace {

ScenarioConfig FastScenario() {
  ScenarioConfig c;
  c.duration = Seconds(30);
  c.ransom_start = Seconds(8);
  // Enough victim data that even fast families stay busy for the ~8 s the
  // score needs to reach the threshold.
  c.fileset_files = 900;
  return c;
}

core::DetectorConfig DefaultDetector() { return core::DetectorConfig{}; }

TEST(TrainingTest, SamplesContainBothClasses) {
  TrainConfig tc;
  tc.scenario = FastScenario();
  tc.seeds_per_scenario = 1;
  BuiltScenario s = BuildScenario({wl::AppKind::kNone, "Locky.bbs", ""},
                                  tc.scenario, 3);
  std::vector<core::Sample> samples =
      ExtractSamples(s, tc.detector, tc.label_min_ransom_writes);
  ASSERT_FALSE(samples.empty());
  std::size_t pos = 0;
  for (const core::Sample& smp : samples) pos += smp.ransomware;
  EXPECT_GT(pos, 0u);
  EXPECT_LT(pos, samples.size());
}

TEST(TrainingTest, TrainedTreeSeparatesTrainingScenarios) {
  TrainConfig tc;
  tc.scenario = FastScenario();
  tc.seeds_per_scenario = 1;
  std::vector<core::Sample> samples =
      CollectSamples(TrainingScenarios(), tc);
  core::DecisionTree tree = core::TrainId3(samples, tc.id3);
  ASSERT_FALSE(tree.Empty());
  EXPECT_GE(core::Accuracy(tree, samples), 0.95);
}

TEST(DetectionIntegrationTest, PretrainedTreeDetectsRansomOnlyAttack) {
  BuiltScenario s = BuildScenario({wl::AppKind::kNone, "WannaCry", ""},
                                  FastScenario(), 17);
  DetectionRun run = RunDetection(core::PretrainedTree(), DefaultDetector(),
                                  s.merged, s.ransom.active_begin);
  ASSERT_TRUE(run.alarm_time.has_value());
  double latency = ToSeconds(*run.alarm_time - s.ransom.active_begin);
  EXPECT_LT(latency, 10.0);  // the paper's detection-latency bound
}

TEST(DetectionIntegrationTest, PretrainedTreeQuietOnBenignApps) {
  for (wl::AppKind app :
       {wl::AppKind::kWebSurfing, wl::AppKind::kP2pDownload,
        wl::AppKind::kVideoDecode, wl::AppKind::kCompression}) {
    BuiltScenario s =
        BuildScenario({app, "", ""}, FastScenario(), 23);
    DetectionRun run =
        RunDetection(core::PretrainedTree(), DefaultDetector(), s.merged);
    EXPECT_LT(run.max_score, DefaultDetector().score_threshold)
        << wl::AppKindName(app);
  }
}

TEST(DetectionIntegrationTest, RansomwareDetectedUnderBackgroundLoad) {
  for (const char* family : {"Mole", "GlobeImposter"}) {
    BuiltScenario s = BuildScenario(
        {wl::AppKind::kWebSurfing, family, ""}, FastScenario(), 31);
    DetectionRun run = RunDetection(core::PretrainedTree(), DefaultDetector(),
                                    s.merged, s.ransom.active_begin);
    EXPECT_TRUE(run.alarm_time.has_value()) << family;
  }
}

TEST(GcIntegrationTest, InsiderFtlCostsMoreUnderHighUtilization) {
  GcExperimentConfig gc;
  gc.geometry = nand::TestGeometry();
  gc.geometry.blocks_per_chip = 64;  // 2x2x64x8 = 2048 pages
  gc.fill_fraction = 0.9;
  ScenarioConfig sc = FastScenario();
  sc.duration = Seconds(10);
  sc.lba_space = 1024;
  BuiltScenario s =
      BuildScenario({wl::AppKind::kDataWiping, "", ""}, sc, 41);
  GcResult r = RunGcExperiment(s, gc);
  EXPECT_GE(r.copies_insider, r.copies_conventional);
  EXPECT_GT(r.copies_insider, 0u);
}

TEST(ConsistencyIntegrationTest, AttackRollbackFsckRecoversEverything) {
  ConsistencyTrialConfig cfg;  // default 256-MB device, 200 small documents
  cfg.seed = 5;
  ConsistencyTrialResult r =
      RunConsistencyTrial(core::PretrainedTree(), cfg);
  ASSERT_TRUE(r.detected);
  ASSERT_TRUE(r.rolled_back);
  EXPECT_LT(ToSeconds(r.detection_latency), 10.0);
  EXPECT_LT(ToSeconds(r.rollback_duration), 1.0);
  EXPECT_TRUE(r.clean_after_repair);
  EXPECT_EQ(r.files_total, 200u);
  EXPECT_EQ(r.files_intact, 200u);  // the paper's "0% data loss"
  EXPECT_EQ(r.files_encrypted, 0u);
  EXPECT_EQ(r.files_corrupt, 0u);
}

TEST(ConsistencyIntegrationTest, RepeatedTrialsAllRecover) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ConsistencyTrialConfig cfg;
    cfg.seed = seed;
    ConsistencyTrialResult r =
        RunConsistencyTrial(core::PretrainedTree(), cfg);
    ASSERT_TRUE(r.detected) << "seed " << seed;
    EXPECT_EQ(r.files_intact, r.files_total) << "seed " << seed;
  }
}

TEST(AccuracyIntegrationTest, ThresholdSweepShapesMatchFig7) {
  // Miniature Fig. 7: with threshold 3, FRR must be 0 on the ransom-only
  // scenario and FAR 0 on the normal-app scenarios.
  AccuracyConfig ac;
  ac.scenario = FastScenario();
  ac.repetitions = 2;
  std::vector<ScenarioSpec> specs = {
      {wl::AppKind::kNone, "WannaCry", ""},
      {wl::AppKind::kWebSurfing, "GlobeImposter", ""},
  };
  std::vector<CategoryAccuracy> acc =
      EvaluateAccuracy(core::PretrainedTree(), specs, ac);
  for (const CategoryAccuracy& ca : acc) {
    // FRR is monotonically non-decreasing in the threshold, FAR
    // non-increasing.
    for (std::size_t i = 1; i < ca.points.size(); ++i) {
      EXPECT_GE(ca.points[i].frr, ca.points[i - 1].frr);
      EXPECT_LE(ca.points[i].far, ca.points[i - 1].far);
    }
    const AccuracyPoint& at3 = ca.points[2];
    EXPECT_EQ(at3.threshold, 3);
    if (ca.points[0].ransom_runs > 0) {
      EXPECT_DOUBLE_EQ(at3.frr, 0.0)
          << wl::AppCategoryName(ca.category);
    }
  }
}

}  // namespace
}  // namespace insider::host
