// The detection matrix: every modeled ransomware family against
// representative backgrounds, using a tree trained once (shared fixture) on
// the Table I training scenarios — the paper's headline "100% detection of
// unknown ransomware" claim as a test.
#include <gtest/gtest.h>

#include <memory>

#include "host/experiment.h"
#include "host/train.h"

namespace insider::host {
namespace {

class DetectionMatrixTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TrainConfig tc;
    tc.scenario.duration = Seconds(40);
    tc.scenario.ransom_start = Seconds(12);
    tc.seeds_per_scenario = 3;
    tree_ = new core::DecisionTree(TrainDefaultTree(tc));
  }
  static void TearDownTestSuite() {
    delete tree_;
    tree_ = nullptr;
  }

  static ScenarioConfig Scenario() {
    ScenarioConfig c;
    c.duration = Seconds(40);
    c.ransom_start = Seconds(12);
    c.fileset_files = 1200;
    return c;
  }

  static DetectionRun Run(wl::AppKind app, const std::string& family,
                          std::uint64_t seed) {
    BuiltScenario s = BuildScenario({app, family, ""}, Scenario(), seed);
    return RunDetection(*tree_, core::DetectorConfig{}, s.merged,
                        s.ransom.active_begin);
  }

  static core::DecisionTree* tree_;
};

core::DecisionTree* DetectionMatrixTest::tree_ = nullptr;

TEST_F(DetectionMatrixTest, EveryFamilyDetectedAlone) {
  for (const std::string& family : wl::AllRansomwareNames()) {
    DetectionRun run = Run(wl::AppKind::kNone, family, 4242);
    EXPECT_TRUE(run.alarm_time.has_value()) << family;
  }
}

TEST_F(DetectionMatrixTest, EveryFamilyDetectedUnderLightBackground) {
  for (const std::string& family : wl::AllRansomwareNames()) {
    DetectionRun run = Run(wl::AppKind::kWebSurfing, family, 4243);
    EXPECT_TRUE(run.alarm_time.has_value()) << family;
  }
}

TEST_F(DetectionMatrixTest, FastFamiliesDetectedUnderHeavyOverwriting) {
  for (const char* family : {"WannaCry", "Mole", "GlobeImposter",
                             "InHouse.inplace", "InHouse.outplace"}) {
    DetectionRun run = Run(wl::AppKind::kDataWiping, family, 4244);
    EXPECT_TRUE(run.alarm_time.has_value()) << family;
  }
}

TEST_F(DetectionMatrixTest, BenignBackgroundsStayQuiet) {
  core::DetectorConfig dc;
  for (wl::AppKind app : wl::AllAppKinds()) {
    BuiltScenario s = BuildScenario({app, "", ""}, Scenario(), 4245);
    DetectionRun run = RunDetection(*tree_, dc, s.merged);
    EXPECT_LT(run.max_score, dc.score_threshold) << wl::AppKindName(app);
  }
}

TEST_F(DetectionMatrixTest, ScoresUnmovedByProgramFaults) {
  // Device-fault robustness: a realistic grown-defect rate (1e-3 program
  // fails, absorbed by write re-drive + block retirement inside the FTL)
  // must not perturb what the detector sees — same families, same seeds,
  // scores within +-1 of the ideal-media run.
  for (const char* family : {"WannaCry", "Mole", "InHouse.inplace"}) {
    InterleavedConfig cfg;
    cfg.benign_tenants = 2;
    cfg.ransomware = family;
    cfg.duration = Seconds(30);
    cfg.ransom_start = Seconds(8);
    cfg.seed = 4247;
    InterleavedResult clean = RunInterleavedDetection(*tree_, cfg);
    cfg.ftl.errors.program_fail_prob = 1e-3;
    cfg.ftl.error_seed = 0xFA17;
    InterleavedResult faulty = RunInterleavedDetection(*tree_, cfg);

    EXPECT_TRUE(clean.alarm) << family;
    EXPECT_TRUE(faulty.alarm) << family;
    int diff = clean.max_score - faulty.max_score;
    EXPECT_LE(diff < 0 ? -diff : diff, 1) << family;
  }
}

TEST_F(DetectionMatrixTest, ScoresUnmovedByVersionStore) {
  // Versioning robustness: enabling per-range retention (protected LBAs,
  // archived versions, the content-addressed store) is firmware-internal
  // bookkeeping — the request stream the detector scores must be identical,
  // so the same families under the same seeds alarm with the same scores.
  for (const char* family : {"WannaCry", "Mole", "InHouse.inplace"}) {
    InterleavedConfig cfg;
    cfg.benign_tenants = 2;
    cfg.ransomware = family;
    cfg.duration = Seconds(30);
    cfg.ransom_start = Seconds(8);
    cfg.seed = 4247;
    InterleavedResult plain = RunInterleavedDetection(*tree_, cfg);

    auto table = std::make_shared<version::RangePolicyTable>();
    ASSERT_TRUE(table->Add({0, 4096, 8, Seconds(120)}));
    cfg.ftl.range_policies = table;
    InterleavedResult versioned = RunInterleavedDetection(*tree_, cfg);

    EXPECT_TRUE(plain.alarm) << family;
    EXPECT_TRUE(versioned.alarm) << family;
    EXPECT_EQ(plain.max_score, versioned.max_score) << family;
    EXPECT_EQ(plain.alarm_time, versioned.alarm_time) << family;
  }
}

TEST_F(DetectionMatrixTest, DetectionLatencyWithinPaperBoundWhenAlone) {
  for (const std::string& family : wl::AllRansomwareNames()) {
    DetectionRun run = Run(wl::AppKind::kNone, family, 4246);
    ASSERT_TRUE(run.alarm_time.has_value()) << family;
    BuiltScenario s = BuildScenario({wl::AppKind::kNone, family, ""},
                                    Scenario(), 4246);
    double latency = ToSeconds(*run.alarm_time - s.ransom.active_begin);
    EXPECT_LT(latency, 10.0) << family;  // the paper's bound
  }
}

}  // namespace
}  // namespace insider::host
