// Watermark-driven background GC on the firmware scheduler: foreground
// writes must not pay inline reclamation until the free pool is at the hard
// floor, because the background task armed at the low watermark refills the
// pool during command gaps — and every firmware step must leave the FTL's
// invariants intact.
#include <gtest/gtest.h>

#include "host/ssd.h"
#include "host/ssd_target.h"
#include "io/io_engine.h"
#include "nand/geometry.h"

namespace insider::host {
namespace {

std::uint64_t Lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s >> 33;
}

SsdConfig Cfg(bool delayed = false) {
  SsdConfig cfg;
  cfg.ftl.geometry = nand::TestGeometry();
  cfg.ftl.latency = nand::LatencyModel::Zero();
  cfg.ftl.delayed_deletion = delayed;
  cfg.ftl.exported_fraction = 0.5;
  cfg.detector_enabled = false;  // isolate the GC machinery
  return cfg;
}

/// Rewrite the whole exported range `rounds` times, one write per
/// millisecond, draining the firmware scheduler after every write the way
/// the I/O engine does between commands.
void RewriteWithDrains(Ssd& ssd, int rounds, SimTime* t_inout) {
  const Lba n = ssd.Ftl().ExportedLbas();
  SimTime t = *t_inout;
  for (int round = 0; round < rounds; ++round) {
    for (Lba lba = 0; lba < n; ++lba) {
      t += Milliseconds(1);
      ASSERT_EQ(ssd.WriteBlockAt(lba, {static_cast<std::uint64_t>(round), {}},
                                 t).status,
                ftl::FtlStatus::kOk);
      ssd.DrainFirmware(t);
    }
  }
  *t_inout = t;
}

TEST(BackgroundGcTest, WritesNeverBlockBeforeTheHardFloor) {
  Ssd ssd(Cfg(), core::DecisionTree{});
  SimTime t = 0;
  RewriteWithDrains(ssd, 6, &t);

  const ftl::FtlStats& s = ssd.Ftl().Stats();
  // Background GC carried the whole reclamation load: the free pool never
  // fell to gc_reserve_blocks, so no write invoked inline GC.
  EXPECT_EQ(s.gc_invocations, 0u);
  EXPECT_EQ(s.gc_stall_time, 0);
  EXPECT_GT(s.gc_background_blocks, 0u);
  EXPECT_GT(ssd.Ftl().FreeBlockCount(),
            ssd.Config().ftl.gc_reserve_blocks);
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
}

TEST(BackgroundGcTest, ForegroundGcIsTheFallbackWithoutWatermarks) {
  SsdConfig cfg = Cfg();
  cfg.ftl.gc_low_watermark_blocks = 0;  // background never arms
  Ssd ssd(cfg, core::DecisionTree{});
  SimTime t = 0;
  RewriteWithDrains(ssd, 6, &t);

  const ftl::FtlStats& s = ssd.Ftl().Stats();
  // Same workload, no background task: writes hit the floor and stall on
  // inline GC — the contrast the watermark design removes.
  EXPECT_EQ(s.gc_background_blocks, 0u);
  EXPECT_GT(s.gc_invocations, 0u);
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
}

TEST(BackgroundGcTest, BackgroundStopsAtTheHighWatermark) {
  Ssd ssd(Cfg(), core::DecisionTree{});
  SimTime t = 0;
  RewriteWithDrains(ssd, 6, &t);
  // After a long drained-out stretch the pool sits in the hysteresis band:
  // at or above the arm threshold, no higher than the stop threshold plus
  // what the last quantum's budget overshot.
  ssd.IdleUntil(t + Seconds(1));
  EXPECT_LE(ssd.Ftl().FreeBlockCount(),
            static_cast<std::size_t>(
                ssd.Config().ftl.gc_high_watermark_blocks +
                ssd.Config().gc_task_block_budget));
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
}

TEST(BackgroundGcTest, InvariantsHoldAfterEveryFirmwareStep) {
  SsdConfig cfg = Cfg(/*delayed=*/true);
  cfg.ftl.retention_window = Milliseconds(50);
  Ssd ssd(cfg, core::DecisionTree{});
  const Lba n = ssd.Ftl().ExportedLbas();

  std::uint64_t seed = 0xFEED;
  SimTime t = 0;
  for (int i = 0; i < 3000; ++i) {
    t += Milliseconds(1);
    Lba lba = Lcg(seed) % n;
    if (Lcg(seed) % 10 < 8) {
      ssd.WriteBlockAt(lba, {static_cast<std::uint64_t>(i), {}}, t);
    } else {
      ssd.TrimBlockAt(lba, t);
    }
    ssd.DrainFirmware(t);
    ASSERT_EQ(ssd.Ftl().CheckInvariants(), "") << "after op " << i;
  }
  EXPECT_GT(ssd.Ftl().Stats().gc_background_blocks, 0u);
}

TEST(BackgroundGcTest, IdleGcBudgetComesFromConfig) {
  SsdConfig cfg = Cfg();
  cfg.ftl.gc_low_watermark_blocks = 0;  // only the idle one-shot collects
  cfg.gc_task_block_budget = 2;
  Ssd ssd(cfg, core::DecisionTree{});
  const Lba n = ssd.Ftl().ExportedLbas();
  SimTime t = 0;
  // Two full rewrites leave plenty of fully-invalid blocks behind.
  for (int round = 0; round < 2; ++round) {
    for (Lba lba = 0; lba < n; ++lba) {
      t += Milliseconds(1);
      ssd.WriteBlockAt(lba, {static_cast<std::uint64_t>(round), {}}, t);
    }
  }
  std::size_t free_before = ssd.Ftl().FreeBlockCount();
  ssd.IdleUntil(t + Seconds(1));
  std::size_t gained = ssd.Ftl().FreeBlockCount() - free_before;
  EXPECT_GT(gained, 0u);
  EXPECT_LE(gained, cfg.gc_task_block_budget);
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
}

TEST(BackgroundGcTest, EngineGapsDriveBackgroundGc) {
  Ssd ssd(Cfg(), core::DecisionTree{});
  SsdTarget target(ssd);
  io::EngineConfig ec;
  ec.queue_count = 2;
  ec.queue.sq_depth = 16;
  io::IoEngine engine(target, ec);

  const Lba n = ssd.Ftl().ExportedLbas();
  SimTime t = 0;
  std::uint64_t stamp = 0;
  for (int round = 0; round < 6; ++round) {
    for (Lba lba = 0; lba < n; ++lba) {
      t += Milliseconds(1);
      IoRequest req{t, lba, 1, IoMode::kWrite};
      io::QueueId q = static_cast<io::QueueId>(lba % ec.queue_count);
      if (!engine.TrySubmit(q, req, stamp++)) {
        engine.Drain();
        while (engine.PopCompletion(q)) {
        }
        ASSERT_TRUE(engine.TrySubmit(q, req, stamp++));
      }
    }
    engine.Drain();
    for (io::QueueId q = 0; q < ec.queue_count; ++q) {
      while (engine.PopCompletion(q)) {
      }
    }
  }

  const ftl::FtlStats& s = ssd.Ftl().Stats();
  // The engine's RunBackgroundUntil hook handed the inter-command gaps to
  // the firmware scheduler, which kept the pool off the floor.
  EXPECT_GT(s.gc_background_blocks, 0u);
  EXPECT_EQ(s.gc_invocations, 0u);
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
}

}  // namespace
}  // namespace insider::host
