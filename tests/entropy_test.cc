// Content-entropy module tests (the SSD-Insider++ direction).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/entropy.h"

namespace insider::core {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(ShannonEntropyTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(ShannonEntropy({}), 0.0);
}

TEST(ShannonEntropyTest, ConstantBufferIsZero) {
  std::vector<std::byte> buf(4096, std::byte{0x42});
  EXPECT_DOUBLE_EQ(ShannonEntropy(buf), 0.0);
}

TEST(ShannonEntropyTest, TwoSymbolsEqualSplitIsOneBit) {
  std::vector<std::byte> buf;
  for (int i = 0; i < 512; ++i) {
    buf.push_back(std::byte{0x00});
    buf.push_back(std::byte{0xFF});
  }
  EXPECT_NEAR(ShannonEntropy(buf), 1.0, 1e-12);
}

TEST(ShannonEntropyTest, UniformRandomApproachesEightBits) {
  Rng rng(1);
  std::vector<std::byte> buf(1 << 16);
  for (auto& b : buf) b = static_cast<std::byte>(rng.Below(256));
  EXPECT_GT(ShannonEntropy(buf), 7.99);
  EXPECT_LE(ShannonEntropy(buf), 8.0);
}

TEST(ShannonEntropyTest, TextIsMidRange) {
  // English-like text sits well below ciphertext entropy — the signal the
  // content-based detectors in the paper's related work exploit.
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "the quick brown fox jumps over the lazy dog. ";
  }
  double e = ShannonEntropy(Bytes(text));
  EXPECT_GT(e, 3.0);
  EXPECT_LT(e, 5.0);
}

TEST(ShannonEntropyTest, CiphertextBeatsPlaintext) {
  std::string text(8192, ' ');
  for (std::size_t i = 0; i < text.size(); ++i) {
    text[i] = static_cast<char>('a' + i % 26);
  }
  std::vector<std::byte> plain = Bytes(text);
  Rng rng(2);
  std::vector<std::byte> cipher(plain.size());
  for (auto& b : cipher) b = static_cast<std::byte>(rng.Below(256));
  EXPECT_GT(ShannonEntropy(cipher), ShannonEntropy(plain) + 2.0);
}

TEST(EntropyTrackerTest, SlicesAggregateWrites) {
  EntropyTracker tracker(Seconds(1));
  std::vector<std::byte> low(4096, std::byte{0});
  Rng rng(3);
  std::vector<std::byte> high(4096);
  for (auto& b : high) b = static_cast<std::byte>(rng.Below(256));

  tracker.OnWrite(Milliseconds(100), low);
  tracker.OnWrite(Milliseconds(200), low);
  tracker.OnWrite(Seconds(1) + 100, high);
  tracker.AdvanceTo(Seconds(2));

  ASSERT_EQ(tracker.History().size(), 2u);
  EXPECT_NEAR(tracker.History()[0].mean_entropy, 0.0, 1e-9);
  EXPECT_EQ(tracker.History()[0].bytes, 8192u);
  EXPECT_GT(tracker.History()[1].mean_entropy, 7.9);
}

TEST(EntropyTrackerTest, EmptySlicesRecordZeroBytes) {
  EntropyTracker tracker(Seconds(1));
  tracker.AdvanceTo(Seconds(3));
  ASSERT_EQ(tracker.History().size(), 3u);
  for (const auto& s : tracker.History()) {
    EXPECT_EQ(s.bytes, 0u);
    EXPECT_DOUBLE_EQ(s.mean_entropy, 0.0);
  }
}

TEST(EntropyTrackerTest, RecentMeanSkipsEmptySlices) {
  EntropyTracker tracker(Seconds(1));
  Rng rng(4);
  std::vector<std::byte> high(4096);
  for (auto& b : high) b = static_cast<std::byte>(rng.Below(256));
  tracker.OnWrite(Milliseconds(500), high);
  tracker.AdvanceTo(Seconds(5));  // slices 1..4 empty
  EXPECT_GT(tracker.RecentMean(3), 7.9);  // only the busy slice counts
}

TEST(EntropyTrackerTest, MixedSliceBlendsDistributions) {
  EntropyTracker tracker(Seconds(1));
  std::vector<std::byte> zeros(4096, std::byte{0});
  std::vector<std::byte> ones(4096, std::byte{0xFF});
  tracker.OnWrite(100, zeros);
  tracker.OnWrite(200, ones);
  tracker.AdvanceTo(Seconds(1));
  // Two equally likely symbols across the slice: exactly 1 bit.
  EXPECT_NEAR(tracker.History()[0].mean_entropy, 1.0, 1e-9);
}

}  // namespace
}  // namespace insider::core
