// End-to-end causal tracing through the full stack: host commands pushed
// through the 8-queue io::IoEngine into a real Ssd must come back out of the
// trace ring as a consistent span stack — engine submit/queue-wait/
// arbitration/device plus the FTL and NAND work underneath, all carrying the
// command's trace id — and the metrics registry must account for the same
// phases. Span assertions are gated on obs::TraceCompiledIn() — with
// -DINSIDER_TRACE=OFF the instrumentation points are compiled out and
// those checks are vacuous — while the metrics and determinism checks run
// in every configuration.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pretrained.h"
#include "host/experiment.h"
#include "host/ssd.h"
#include "host/ssd_target.h"
#include "io/io_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/multi_tenant.h"

namespace insider {
namespace {

struct MqueueRun {
  obs::Tracer tracer{1 << 18};
  obs::MetricsRegistry metrics;
  wl::MultiTenantReport report;
  std::uint64_t dispatched = 0;
};

// The trace_dump / mqueue_throughput workload in miniature: 8 queues of
// depth 32 hammering a 4x4 device with 50/50 read/write traffic.
void RunMqueue(MqueueRun& run, std::size_t commands_per_queue) {
  constexpr std::size_t kQueues = 8;
  host::SsdConfig scfg;
  scfg.ftl.geometry.channels = 4;
  scfg.ftl.geometry.ways = 4;
  scfg.ftl.geometry.blocks_per_chip = 128;
  scfg.ftl.geometry.pages_per_block = 64;
  scfg.detector_enabled = false;
  host::Ssd ssd(scfg, core::PretrainedTree());
  host::SsdTarget target(ssd);
  ssd.AttachObs(&run.tracer, &run.metrics);

  const Lba exported = ssd.Ftl().ExportedLbas();
  const Lba region = exported / static_cast<Lba>(kQueues);
  Rng rng(0x7E57'7E57);
  std::vector<wl::TenantSpec> tenants;
  for (std::size_t q = 0; q < kQueues; ++q) {
    wl::TenantSpec t;
    t.name = "host" + std::to_string(q);
    t.stamp_base = q * 1'000'000ull;
    for (std::size_t i = 0; i < commands_per_queue; ++i) {
      IoRequest req;
      req.time = CostOf(i, 10);
      // Narrow per-queue range so reads regularly land on LBAs an earlier
      // write mapped — that is what exercises the full read span stack
      // (map lookup -> cell read -> bus) instead of early-out unmapped reads.
      req.lba = region * q + rng.Below(48);
      req.length = 1;
      req.mode = rng.Chance(0.5) ? IoMode::kRead : IoMode::kWrite;
      t.requests.push_back(req);
    }
    tenants.push_back(std::move(t));
  }

  io::EngineConfig ecfg;
  ecfg.queue_count = kQueues;
  ecfg.queue.sq_depth = 32;
  io::IoEngine engine(target, ecfg);
  engine.AttachObs(&run.tracer, &run.metrics);
  wl::MultiTenantDriver driver(std::move(tenants));
  run.report = driver.Run(engine);
  run.dispatched = engine.Stats().dispatched;
}

TEST(TraceIntegrationTest, CommandsRenderAsNestedSpanStacks) {
  if (!obs::TraceCompiledIn()) GTEST_SKIP() << "built with INSIDER_TRACE=OFF";
  MqueueRun run;
  RunMqueue(run, 150);
  ASSERT_EQ(run.dispatched, 8u * 150u);
  EXPECT_EQ(run.tracer.Buffer().Dropped(), 0u);

  std::map<obs::TraceId, std::vector<obs::TraceEvent>> by_trace;
  for (obs::TraceEvent& e : run.tracer.Buffer().Snapshot()) {
    by_trace[e.trace].push_back(std::move(e));
  }

  // Every dispatched command contributed a trace; none under the background
  // id carries an engine span (background work is firmware/GC only).
  std::size_t full_write_stacks = 0;
  std::size_t full_read_stacks = 0;
  for (const auto& [id, events] : by_trace) {
    if (id == obs::kBackgroundTrace) {
      for (const obs::TraceEvent& e : events) EXPECT_NE(e.cat, "engine");
      continue;
    }
    std::set<std::string> names;
    const obs::TraceEvent* queue_wait = nullptr;
    const obs::TraceEvent* device = nullptr;
    for (const obs::TraceEvent& e : events) {
      names.insert(e.name);
      if (e.name == "engine.queue_wait") queue_wait = &e;
      if (e.name == "engine.device") device = &e;
    }
    // The engine phases are unconditional for every command.
    ASSERT_TRUE(names.count("engine.submit")) << "trace " << id;
    ASSERT_TRUE(names.count("engine.arbitration")) << "trace " << id;
    ASSERT_NE(queue_wait, nullptr);
    ASSERT_NE(device, nullptr);
    // Nesting: submit -> [queue_wait] -> [device], and all NAND work inside
    // the device span's envelope.
    EXPECT_LE(queue_wait->begin, queue_wait->end);
    EXPECT_EQ(queue_wait->end, device->begin);
    for (const obs::TraceEvent& e : events) {
      if (e.cat == std::string("nand") || e.cat == std::string("ftl")) {
        EXPECT_GE(e.begin, device->begin) << e.name << " trace " << id;
        EXPECT_LE(e.end, device->end) << e.name << " trace " << id;
      }
    }
    if (names.count("nand.cell_program")) {
      EXPECT_TRUE(names.count("nand.bus"));
      ++full_write_stacks;
    }
    if (names.count("ftl.map_lookup") && names.count("nand.cell_read")) {
      EXPECT_TRUE(names.count("nand.bus"));
      ++full_read_stacks;
    }
  }
  EXPECT_EQ(by_trace.size() - by_trace.count(obs::kBackgroundTrace),
            run.dispatched);
  // Plenty of commands exercise the full path both ways.
  EXPECT_GT(full_write_stacks, 100u);
  EXPECT_GT(full_read_stacks, 10u);
}

TEST(TraceIntegrationTest, MetricsAccountForTheSamePhases) {
  // Deliberately NOT gated on TraceCompiledIn(): metric recording is a
  // plain null-checked call, independent of the INSIDER_TRACE macro, and
  // must keep working when the span instrumentation is compiled out.
  MqueueRun run;
  RunMqueue(run, 100);
  const auto& h = run.metrics.Histograms();
  for (const char* name :
       {"engine.queue_wait_us", "engine.device_us", "engine.latency_us"}) {
    auto it = h.find(name);
    ASSERT_NE(it, h.end()) << name;
    EXPECT_EQ(it->second.Count(), run.dispatched) << name;
    EXPECT_EQ(it->second.Underflow(), 0u) << name;
    EXPECT_EQ(it->second.Overflow(), 0u) << name;
  }
  // NAND occupancy histograms fill from the device side.
  ASSERT_TRUE(h.count("nand.bus_us"));
  EXPECT_GT(h.at("nand.bus_us").Count(), 0u);
  ASSERT_TRUE(h.count("nand.cell_program_us"));
  EXPECT_GT(h.at("nand.cell_program_us").Count(), 0u);
}

TEST(TraceIntegrationTest, TracingNeverPerturbsVirtualTime) {
  // The same workload with and without sinks attached must produce
  // bit-identical virtual-time results — the "near-zero cost when disabled"
  // contract, verified at its strongest: identical even when ENABLED.
  MqueueRun traced;
  RunMqueue(traced, 120);

  // Re-run with no sinks: reuse the helper but detach by running a copy
  // whose tracer/metrics are never attached.
  constexpr std::size_t kQueues = 8;
  host::SsdConfig scfg;
  scfg.ftl.geometry.channels = 4;
  scfg.ftl.geometry.ways = 4;
  scfg.ftl.geometry.blocks_per_chip = 128;
  scfg.ftl.geometry.pages_per_block = 64;
  scfg.detector_enabled = false;
  host::Ssd ssd(scfg, core::PretrainedTree());
  host::SsdTarget target(ssd);
  const Lba exported = ssd.Ftl().ExportedLbas();
  const Lba region = exported / static_cast<Lba>(kQueues);
  Rng rng(0x7E57'7E57);
  std::vector<wl::TenantSpec> tenants;
  for (std::size_t q = 0; q < kQueues; ++q) {
    wl::TenantSpec t;
    t.name = "host" + std::to_string(q);
    t.stamp_base = q * 1'000'000ull;
    for (std::size_t i = 0; i < 120; ++i) {
      IoRequest req;
      req.time = CostOf(i, 10);
      req.lba = region * q + rng.Below(48);  // mirror RunMqueue exactly
      req.length = 1;
      req.mode = rng.Chance(0.5) ? IoMode::kRead : IoMode::kWrite;
      t.requests.push_back(req);
    }
    tenants.push_back(std::move(t));
  }
  io::EngineConfig ecfg;
  ecfg.queue_count = kQueues;
  ecfg.queue.sq_depth = 32;
  io::IoEngine engine(target, ecfg);
  wl::MultiTenantDriver driver(std::move(tenants));
  wl::MultiTenantReport bare = driver.Run(engine);

  EXPECT_EQ(bare.end_time, traced.report.end_time);
  ASSERT_EQ(bare.tenants.size(), traced.report.tenants.size());
  for (std::size_t i = 0; i < bare.tenants.size(); ++i) {
    EXPECT_EQ(bare.tenants[i].latencies, traced.report.tenants[i].latencies)
        << "tenant " << i;
  }
}

TEST(TraceIntegrationTest, InterleavedDetectionExportsSliceHistory) {
  // The experiment runner copies the detector's per-slice introspection
  // records (features, tree path, score) into the result.
  host::InterleavedConfig cfg;
  cfg.benign_tenants = 2;
  cfg.duration = Seconds(16);
  cfg.ransom_start = Seconds(5);
  cfg.seed = 7;
  obs::Tracer tracer(1 << 16);
  obs::MetricsRegistry metrics;
  cfg.tracer = &tracer;
  cfg.metrics = &metrics;
  host::InterleavedResult r =
      host::RunInterleavedDetection(core::PretrainedTree(), cfg);
  ASSERT_FALSE(r.slices.empty());
  int max_score = 0;
  for (const core::SliceRecord& rec : r.slices) {
    EXPECT_FALSE(rec.tree_path.empty());
    max_score = std::max(max_score, rec.score);
  }
  EXPECT_EQ(max_score, r.max_score);
  if (obs::TraceCompiledIn()) {
    EXPECT_GT(tracer.Buffer().Size(), 0u);
    // An alarm (if raised) shows up as an ssd.alarm instant.
    bool saw_alarm_marker = false;
    for (const obs::TraceEvent& e : tracer.Buffer().Snapshot()) {
      if (e.name == "ssd.alarm") saw_alarm_marker = true;
    }
    EXPECT_EQ(saw_alarm_marker, r.alarm);
  }
}

}  // namespace
}  // namespace insider
