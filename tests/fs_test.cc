#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fs/file_system.h"

namespace insider::fs {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::vector<std::byte> RandomBytes(Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.Below(256));
  return out;
}

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(FileSystem::Mkfs(dev_, 128), FsStatus::kOk);
    auto fs = FileSystem::Mount(dev_);
    ASSERT_TRUE(fs.has_value());
    fs_.emplace(std::move(*fs));
  }

  MemBlockDevice dev_{4096};  // 16 MB
  std::optional<FileSystem> fs_;
};

TEST_F(FsTest, MountFailsOnBlankDevice) {
  MemBlockDevice blank(128);
  EXPECT_FALSE(FileSystem::Mount(blank).has_value());
}

TEST_F(FsTest, CreateAndStatFile) {
  EXPECT_EQ(fs_->CreateFile("/a.txt"), FsStatus::kOk);
  EXPECT_TRUE(fs_->Exists("/a.txt"));
  EXPECT_EQ(fs_->FileSize("/a.txt"), 0u);
}

TEST_F(FsTest, CreateDuplicateFails) {
  ASSERT_EQ(fs_->CreateFile("/a"), FsStatus::kOk);
  EXPECT_EQ(fs_->CreateFile("/a"), FsStatus::kExists);
}

TEST_F(FsTest, WriteReadRoundTrip) {
  ASSERT_EQ(fs_->CreateFile("/a"), FsStatus::kOk);
  auto data = Bytes("hello, ssd-insider");
  ASSERT_EQ(fs_->WriteFile("/a", 0, data), FsStatus::kOk);
  std::vector<std::byte> out(data.size());
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/a", 0, out, &n), FsStatus::kOk);
  EXPECT_EQ(n, data.size());
  EXPECT_EQ(out, data);
}

TEST_F(FsTest, WriteAtOffsetAndReadBack) {
  ASSERT_EQ(fs_->CreateFile("/a"), FsStatus::kOk);
  ASSERT_EQ(fs_->WriteFile("/a", 10000, Bytes("xyz")), FsStatus::kOk);
  EXPECT_EQ(fs_->FileSize("/a"), 10003u);
  std::vector<std::byte> out(3);
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/a", 10000, out, &n), FsStatus::kOk);
  EXPECT_EQ(out, Bytes("xyz"));
  // The hole before the data reads as zeros.
  std::vector<std::byte> hole(100);
  ASSERT_EQ(fs_->ReadFile("/a", 0, hole, &n), FsStatus::kOk);
  for (std::byte b : hole) EXPECT_EQ(b, std::byte{0});
}

TEST_F(FsTest, ReadPastEofIsShort) {
  ASSERT_EQ(fs_->CreateFile("/a"), FsStatus::kOk);
  ASSERT_EQ(fs_->WriteFile("/a", 0, Bytes("abc")), FsStatus::kOk);
  std::vector<std::byte> out(100);
  std::uint64_t n = 99;
  ASSERT_EQ(fs_->ReadFile("/a", 0, out, &n), FsStatus::kOk);
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(fs_->ReadFile("/a", 50, out, &n), FsStatus::kOk);
  EXPECT_EQ(n, 0u);
}

TEST_F(FsTest, LargeFileSpansIndirectBlocks) {
  ASSERT_EQ(fs_->CreateFile("/big"), FsStatus::kOk);
  Rng rng(4);
  // > 12 direct blocks (48 KB) and > single-indirect reach.
  std::size_t size = (kDirectPointers + kPointersPerBlock + 5) * kBlockSize;
  auto data = RandomBytes(rng, size);
  ASSERT_EQ(fs_->WriteFile("/big", 0, data), FsStatus::kOk);
  std::vector<std::byte> out(size);
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/big", 0, out, &n), FsStatus::kOk);
  EXPECT_EQ(n, size);
  EXPECT_EQ(out, data);
}

TEST_F(FsTest, OverwriteInPlaceKeepsSize) {
  ASSERT_EQ(fs_->CreateFile("/a"), FsStatus::kOk);
  Rng rng(9);
  auto v1 = RandomBytes(rng, 3 * kBlockSize);
  auto v2 = RandomBytes(rng, 3 * kBlockSize);
  ASSERT_EQ(fs_->WriteFile("/a", 0, v1), FsStatus::kOk);
  std::uint64_t free_before = fs_->FreeBlocks();
  ASSERT_EQ(fs_->WriteFile("/a", 0, v2), FsStatus::kOk);
  EXPECT_EQ(fs_->FreeBlocks(), free_before);  // no new allocation
  std::vector<std::byte> out(v2.size());
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/a", 0, out, &n), FsStatus::kOk);
  EXPECT_EQ(out, v2);
}

TEST_F(FsTest, UnlinkFreesSpace) {
  ASSERT_EQ(fs_->CreateFile("/a"), FsStatus::kOk);
  std::uint64_t free_initial = fs_->FreeBlocks();
  Rng rng(2);
  ASSERT_EQ(fs_->WriteFile("/a", 0, RandomBytes(rng, 20 * kBlockSize)),
            FsStatus::kOk);
  EXPECT_LT(fs_->FreeBlocks(), free_initial);
  ASSERT_EQ(fs_->Unlink("/a"), FsStatus::kOk);
  EXPECT_EQ(fs_->FreeBlocks(), free_initial);
  EXPECT_FALSE(fs_->Exists("/a"));
}

TEST_F(FsTest, UnlinkMissingFileFails) {
  EXPECT_EQ(fs_->Unlink("/nope"), FsStatus::kNotFound);
}

TEST_F(FsTest, MkdirAndNestedFiles) {
  ASSERT_EQ(fs_->Mkdir("/docs"), FsStatus::kOk);
  ASSERT_EQ(fs_->Mkdir("/docs/work"), FsStatus::kOk);
  ASSERT_EQ(fs_->CreateFile("/docs/work/report"), FsStatus::kOk);
  ASSERT_EQ(fs_->WriteFile("/docs/work/report", 0, Bytes("q3")),
            FsStatus::kOk);
  EXPECT_TRUE(fs_->Exists("/docs/work/report"));
  std::vector<std::string> names;
  ASSERT_EQ(fs_->ListDir("/docs", names), FsStatus::kOk);
  EXPECT_EQ(names, std::vector<std::string>{"work"});
}

TEST_F(FsTest, RmdirOnlyWhenEmpty) {
  ASSERT_EQ(fs_->Mkdir("/d"), FsStatus::kOk);
  ASSERT_EQ(fs_->CreateFile("/d/f"), FsStatus::kOk);
  EXPECT_EQ(fs_->Rmdir("/d"), FsStatus::kDirNotEmpty);
  ASSERT_EQ(fs_->Unlink("/d/f"), FsStatus::kOk);
  EXPECT_EQ(fs_->Rmdir("/d"), FsStatus::kOk);
  EXPECT_FALSE(fs_->Exists("/d"));
}

TEST_F(FsTest, TruncateShrinksAndFrees) {
  ASSERT_EQ(fs_->CreateFile("/a"), FsStatus::kOk);
  Rng rng(6);
  auto data = RandomBytes(rng, 10 * kBlockSize);
  ASSERT_EQ(fs_->WriteFile("/a", 0, data), FsStatus::kOk);
  std::uint64_t free_mid = fs_->FreeBlocks();
  ASSERT_EQ(fs_->Truncate("/a", 2 * kBlockSize), FsStatus::kOk);
  EXPECT_EQ(fs_->FileSize("/a"), 2 * kBlockSize);
  EXPECT_GT(fs_->FreeBlocks(), free_mid);
  // Remaining prefix unchanged.
  std::vector<std::byte> out(2 * kBlockSize);
  std::uint64_t n = 0;
  ASSERT_EQ(fs_->ReadFile("/a", 0, out, &n), FsStatus::kOk);
  EXPECT_TRUE(std::memcmp(out.data(), data.data(), out.size()) == 0);
}

TEST_F(FsTest, PersistsAcrossRemount) {
  ASSERT_EQ(fs_->Mkdir("/d"), FsStatus::kOk);
  ASSERT_EQ(fs_->CreateFile("/d/f"), FsStatus::kOk);
  auto data = Bytes("persistent");
  ASSERT_EQ(fs_->WriteFile("/d/f", 0, data), FsStatus::kOk);
  fs_.reset();
  auto again = FileSystem::Mount(dev_);
  ASSERT_TRUE(again.has_value());
  std::vector<std::byte> out(data.size());
  std::uint64_t n = 0;
  ASSERT_EQ(again->ReadFile("/d/f", 0, out, &n), FsStatus::kOk);
  EXPECT_EQ(out, data);
}

TEST_F(FsTest, NoInodesLeftReported) {
  // Fill the inode table (128 inodes, one is the root).
  FsStatus st = FsStatus::kOk;
  int created = 0;
  for (int i = 0; i < 200; ++i) {
    st = fs_->CreateFile("/f" + std::to_string(i));
    if (st != FsStatus::kOk) break;
    ++created;
  }
  EXPECT_EQ(st, FsStatus::kNoInodes);
  EXPECT_EQ(created, 127);
}

TEST_F(FsTest, NoSpaceReported) {
  MemBlockDevice tiny(64);
  ASSERT_EQ(FileSystem::Mkfs(tiny, 16), FsStatus::kOk);
  auto fs = FileSystem::Mount(tiny);
  ASSERT_TRUE(fs.has_value());
  ASSERT_EQ(fs->CreateFile("/a"), FsStatus::kOk);
  Rng rng(1);
  auto big = RandomBytes(rng, 100 * kBlockSize);
  EXPECT_EQ(fs->WriteFile("/a", 0, big), FsStatus::kNoSpace);
}

TEST_F(FsTest, NameTooLongRejected) {
  std::string longname = "/" + std::string(100, 'x');
  EXPECT_EQ(fs_->CreateFile(longname), FsStatus::kNameTooLong);
}

TEST_F(FsTest, ManyFilesInOneDirectoryGrowsIt) {
  ASSERT_EQ(fs_->Mkdir("/d"), FsStatus::kOk);
  // More files than one directory block's 64 entries.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(fs_->CreateFile("/d/f" + std::to_string(i)), FsStatus::kOk)
        << i;
  }
  std::vector<std::string> names;
  ASSERT_EQ(fs_->ListDir("/d", names), FsStatus::kOk);
  EXPECT_EQ(names.size(), 100u);
}

TEST_F(FsTest, FreeCountsStayConsistentThroughChurn) {
  Rng rng(31);
  // Pre-grow the root directory: its entry block stays allocated after
  // unlinks (as in ext2), so measure the baseline after that growth.
  ASSERT_EQ(fs_->CreateFile("/warmup"), FsStatus::kOk);
  ASSERT_EQ(fs_->Unlink("/warmup"), FsStatus::kOk);
  std::uint64_t free0 = fs_->FreeBlocks();
  std::uint32_t inodes0 = fs_->FreeInodes();
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      std::string path = "/churn" + std::to_string(i);
      ASSERT_EQ(fs_->CreateFile(path), FsStatus::kOk);
      ASSERT_EQ(fs_->WriteFile(path, 0,
                               RandomBytes(rng, 1 + rng.Below(8 * kBlockSize))),
                FsStatus::kOk);
    }
    for (int i = 0; i < 10; ++i) {
      ASSERT_EQ(fs_->Unlink("/churn" + std::to_string(i)), FsStatus::kOk);
    }
  }
  EXPECT_EQ(fs_->FreeBlocks(), free0);
  EXPECT_EQ(fs_->FreeInodes(), inodes0);
}

}  // namespace
}  // namespace insider::fs
