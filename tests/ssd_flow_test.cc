// Alarm-episode flows on the assembled device: the callback ("ransomware
// attack alarm" vendor command), the dismiss path (user answers "no"), the
// multi-episode lifecycle, and detector-vs-FTL interactions.
#include <gtest/gtest.h>

#include <vector>

#include "core/pretrained.h"
#include "host/ssd.h"

namespace insider::host {
namespace {

SsdConfig SmallSsd() {
  SsdConfig c;
  c.ftl.geometry = nand::TestGeometry();
  c.ftl.latency = nand::LatencyModel::Zero();
  return c;
}

core::DecisionTree OwioTree(double threshold = 30.0) {
  std::vector<core::DecisionTree::Node> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = core::FeatureId::kOwIo;
  nodes[0].threshold = threshold;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].is_leaf = true;
  nodes[1].label = false;
  nodes[2].is_leaf = true;
  nodes[2].label = true;
  return core::DecisionTree(std::move(nodes));
}

/// Drive an attack burst until the alarm fires (or `slices` elapse).
void Attack(Ssd& ssd, int slices, SimTime from = 0) {
  for (int s = 0; s < slices && !ssd.AlarmActive(); ++s) {
    SimTime t = from + Seconds(s) + 1000;
    Lba lba = static_cast<Lba>(s) * 40;
    (void)ssd.Submit({t, lba, 40, IoMode::kRead}, 0);
    (void)ssd.Submit({t + 1000, lba, 40, IoMode::kWrite}, 0);
  }
  ssd.IdleUntil(ssd.Clock().Now() + Seconds(1));
}

TEST(AlarmCallbackTest, FiresOncePerEpisode) {
  Ssd ssd(SmallSsd(), OwioTree());
  std::vector<SimTime> alarms;
  ssd.SetAlarmCallback([&](SimTime t) { alarms.push_back(t); });
  Attack(ssd, 8);
  ASSERT_TRUE(ssd.AlarmActive());
  EXPECT_EQ(alarms.size(), 1u);
  // Further attack traffic while already alarmed doesn't re-fire.
  ssd.IdleUntil(ssd.Clock().Now() + Seconds(1));
  EXPECT_EQ(alarms.size(), 1u);
}

TEST(AlarmCallbackTest, FiresAgainAfterReboot) {
  Ssd ssd(SmallSsd(), OwioTree());
  int fired = 0;
  ssd.SetAlarmCallback([&](SimTime) { ++fired; });
  Attack(ssd, 8);
  ASSERT_EQ(fired, 1);
  ssd.RollBackNow();
  ssd.Reboot();
  Attack(ssd, 8, ssd.Clock().Now() + Seconds(1));
  EXPECT_EQ(fired, 2);
}

TEST(AlarmCallbackTest, FiresFromIdleSliceClose) {
  // The vote that crosses the threshold can land on an idle slice boundary
  // (no request in flight); the callback must still fire.
  Ssd ssd(SmallSsd(), OwioTree());
  int fired = 0;
  ssd.SetAlarmCallback([&](SimTime) { ++fired; });
  // Two hot slices (score 2), then the third via IdleUntil.
  for (int s = 0; s < 3; ++s) {
    SimTime t = Seconds(s) + 1000;
    (void)ssd.Submit({t, static_cast<Lba>(s) * 60, 40, IoMode::kRead}, 0);
    (void)ssd.Submit({t + 1000, static_cast<Lba>(s) * 60, 40, IoMode::kWrite}, 0);
  }
  EXPECT_EQ(fired, 0);  // slice 2 not closed yet
  ssd.IdleUntil(Seconds(4));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(ssd.Ftl().IsReadOnly());
}

TEST(DismissAlarmTest, ResumesWritesWithoutRollback) {
  Ssd ssd(SmallSsd(), OwioTree());
  // Pre-attack data.
  (void)ssd.Submit({Seconds(0), 350, 1, IoMode::kWrite}, 111);
  Attack(ssd, 8, Seconds(1));
  ASSERT_TRUE(ssd.AlarmActive());
  ASSERT_TRUE(ssd.Ftl().IsReadOnly());

  ssd.DismissAlarm();  // the user says it's a false alarm
  EXPECT_FALSE(ssd.AlarmActive());
  EXPECT_FALSE(ssd.Ftl().IsReadOnly());
  // The "attack" data survives (no rollback happened)...
  SimTime now = ssd.Clock().Now() + 1000;
  EXPECT_TRUE(ssd.Submit({now, 370, 1, IoMode::kWrite}, 222) ==
              ftl::FtlStatus::kOk);
  // ...and so does the pre-attack data.
  EXPECT_EQ(ssd.Ftl().ReadPage(350, now).data.stamp, 111u);
}

TEST(DismissAlarmTest, DetectionStillWorksAfterDismiss) {
  Ssd ssd(SmallSsd(), OwioTree());
  Attack(ssd, 8);
  ASSERT_TRUE(ssd.AlarmActive());
  ssd.DismissAlarm();
  Attack(ssd, 8, ssd.Clock().Now() + Seconds(1));
  EXPECT_TRUE(ssd.AlarmActive());
}

TEST(SsdFlowTest, FullEpisodeLifecycle) {
  // write -> settle -> attack -> alarm -> rollback -> reboot -> verify ->
  // write again -> second attack -> second recovery.
  Ssd ssd(SmallSsd(), OwioTree());
  for (Lba lba = 0; lba < 64; ++lba) {
    (void)ssd.Submit({Seconds(1), lba, 1, IoMode::kWrite}, 1000 + lba);
  }
  ssd.IdleUntil(Seconds(15));

  // Episode 1: overwrite LBAs 0..40 in slices.
  for (int s = 0; s < 6 && !ssd.AlarmActive(); ++s) {
    SimTime t = Seconds(15 + s);
    (void)ssd.Submit({t, 0, 40, IoMode::kRead}, 0);
    (void)ssd.Submit({t + 1000, 0, 40, IoMode::kWrite}, 9999);
  }
  ssd.IdleUntil(ssd.Clock().Now() + Seconds(1));
  ASSERT_TRUE(ssd.AlarmActive());
  ssd.RollBackNow();
  ssd.Reboot();
  for (Lba lba = 0; lba < 64; ++lba) {
    EXPECT_EQ(ssd.Ftl().ReadPage(lba, ssd.Clock().Now()).data.stamp,
              1000 + lba);
  }

  // Fresh legitimate updates.
  SimTime t2 = ssd.Clock().Now() + Seconds(1);
  for (Lba lba = 0; lba < 32; ++lba) {
    ASSERT_EQ(ssd.Submit({t2, lba, 1, IoMode::kWrite}, 2000 + lba),
              ftl::FtlStatus::kOk);
  }
  ssd.IdleUntil(t2 + Seconds(15));

  // Episode 2.
  SimTime t3 = ssd.Clock().Now();
  for (int s = 0; s < 6 && !ssd.AlarmActive(); ++s) {
    SimTime t = t3 + Seconds(s);
    (void)ssd.Submit({t, 0, 40, IoMode::kRead}, 0);
    (void)ssd.Submit({t + 1000, 0, 40, IoMode::kWrite}, 8888);
  }
  ssd.IdleUntil(ssd.Clock().Now() + Seconds(1));
  ASSERT_TRUE(ssd.AlarmActive());
  ssd.RollBackNow();
  ssd.Reboot();
  for (Lba lba = 0; lba < 32; ++lba) {
    EXPECT_EQ(ssd.Ftl().ReadPage(lba, ssd.Clock().Now()).data.stamp,
              2000 + lba)
        << "lba " << lba;
  }
  for (Lba lba = 40; lba < 64; ++lba) {
    EXPECT_EQ(ssd.Ftl().ReadPage(lba, ssd.Clock().Now()).data.stamp,
              1000 + lba);
  }
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
}

TEST(SsdFlowTest, MultiBlockSubmitStampsSequentially) {
  Ssd ssd(SmallSsd(), OwioTree());
  ASSERT_EQ(ssd.Submit({1000, 20, 8, IoMode::kWrite}, 500),
            ftl::FtlStatus::kOk);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ssd.Ftl().ReadPage(20 + i, 2000).data.stamp, 500 + i);
  }
}

TEST(SsdFlowTest, MixedTrimSubmit) {
  Ssd ssd(SmallSsd(), OwioTree());
  (void)ssd.Submit({1000, 10, 4, IoMode::kWrite}, 7);
  ASSERT_EQ(ssd.Submit({2000, 10, 4, IoMode::kTrim}, 0),
            ftl::FtlStatus::kOk);
  EXPECT_EQ(ssd.Ftl().ReadPage(11, 3000).status, ftl::FtlStatus::kUnmapped);
  // Trimming again tolerates the unmapped range.
  EXPECT_EQ(ssd.Submit({4000, 10, 4, IoMode::kTrim}, 0),
            ftl::FtlStatus::kOk);
}

TEST(SsdFlowTest, WearVisibleThroughFacade) {
  Ssd ssd(SmallSsd(), OwioTree(1e18));  // never alarm
  for (int round = 0; round < 20; ++round) {
    for (Lba lba = 0; lba < 64; ++lba) {
      (void)ssd.Submit({Seconds(round), lba, 1, IoMode::kWrite}, lba);
    }
  }
  EXPECT_GT(ssd.Ftl().Wear().mean_erases, 0.0);
}

}  // namespace
}  // namespace insider::host
