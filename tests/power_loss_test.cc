// Power-loss recovery: PageFtl::RebuildFromNand reconstructs the mapping
// table and the recovery queue from per-page OOB metadata, and the
// host-level PowerLossInjector proves the paper's rollback promise survives
// an ill-timed power cut (detection state is DRAM and restarts cold; the
// backups live in flash).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "ftl/page_ftl.h"
#include "host/power_loss.h"
#include "host/ssd.h"
#include "nand/geometry.h"

namespace insider {
namespace {

nand::PageData Page(std::uint64_t stamp) {
  nand::PageData d;
  d.stamp = stamp;
  return d;
}

ftl::FtlConfig SmallFtl() {
  ftl::FtlConfig c;
  c.geometry = nand::TestGeometry();  // 2x2 chips, 16 blocks/chip, 8 pp/b
  c.latency = nand::LatencyModel::Zero();
  c.exported_fraction = 0.5;  // 256 LBAs
  return c;
}

// ---------------------------------------------------------------------------
// FTL layer: the OOB scan restores what the crash destroyed.

TEST(RebuildTest, RebuildReconstructsMappingAndRecoveryQueue) {
  ftl::PageFtl ftl(SmallFtl());

  // Old state, aged out of the window by the time of the crash.
  for (Lba lba = 0; lba < 100; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(1000 + lba), Seconds(1)).ok());
  }
  ftl.ReleaseExpired(Seconds(15));
  // Fresh overwrites inside the window: these must stay recoverable.
  for (Lba lba = 0; lba < 50; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(2000 + lba), Seconds(20)).ok());
  }

  std::size_t queue_before = ftl.RecoveryQueueSize();
  std::uint64_t valid_before = ftl.ValidPageCount();
  std::uint64_t retained_before = ftl.RetainedPageCount();
  ASSERT_EQ(queue_before, 50u);

  ftl::PageFtl::RebuildReport report = ftl.RebuildFromNand(Seconds(22));
  EXPECT_GT(report.pages_scanned, 0u);
  EXPECT_EQ(report.mappings_restored, 100u);
  EXPECT_EQ(report.backups_restored, 50u);
  EXPECT_GE(report.duration, 0);
  EXPECT_EQ(ftl.Stats().rebuilds, 1u);

  EXPECT_EQ(ftl.RecoveryQueueSize(), queue_before);
  EXPECT_EQ(ftl.ValidPageCount(), valid_before);
  EXPECT_EQ(ftl.RetainedPageCount(), retained_before);
  EXPECT_EQ(ftl.CheckInvariants(), "");

  // Current versions survived byte-for-byte.
  for (Lba lba = 0; lba < 100; ++lba) {
    ftl::FtlResult r = ftl.ReadPage(lba, Seconds(22));
    ASSERT_TRUE(r.ok()) << lba;
    EXPECT_EQ(r.data.stamp, (lba < 50 ? 2000 : 1000) + lba) << lba;
  }

  // And the rebuilt queue still rolls the burst back.
  ftl.SetReadOnly(true);
  ftl.RollBack(Seconds(22));
  for (Lba lba = 0; lba < 100; ++lba) {
    ftl::FtlResult r = ftl.ReadPage(lba, Seconds(23));
    ASSERT_TRUE(r.ok()) << lba;
    EXPECT_EQ(r.data.stamp, 1000 + lba) << lba;
  }
  EXPECT_EQ(ftl.CheckInvariants(), "");
}

TEST(RebuildTest, RollbackAfterCrashMatchesUncrashedTwin) {
  ftl::PageFtl crashed(SmallFtl());
  ftl::PageFtl twin(SmallFtl());

  auto both_write = [&](Lba lba, std::uint64_t stamp, SimTime t) {
    ASSERT_TRUE(crashed.WritePage(lba, Page(stamp), t).ok());
    ASSERT_TRUE(twin.WritePage(lba, Page(stamp), t).ok());
  };

  for (Lba lba = 0; lba < 80; ++lba) both_write(lba, 100 + lba, Seconds(1));
  crashed.ReleaseExpired(Seconds(15));
  twin.ReleaseExpired(Seconds(15));

  // Attack burst from t = 30 s; power dies mid-burst on one device only.
  for (Lba lba = 0; lba < 40; ++lba) {
    both_write(lba, 9000 + lba,
               Seconds(30) + CostOf(lba, Milliseconds(50)));
  }
  (void)crashed.RebuildFromNand(Seconds(33));
  for (Lba lba = 40; lba < 80; ++lba) {
    both_write(lba, 9000 + lba,
               Seconds(33) + CostOf(lba, Milliseconds(50)));
  }

  ASSERT_EQ(crashed.Stats().forced_releases, 0u);
  ASSERT_EQ(crashed.Stats().queue_evictions, 0u);

  // Detection at t = 38 s; horizon 28 s predates the whole burst.
  crashed.SetReadOnly(true);
  twin.SetReadOnly(true);
  crashed.RollBack(Seconds(38));
  twin.RollBack(Seconds(38));

  for (Lba lba = 0; lba < 80; ++lba) {
    ftl::FtlResult a = crashed.ReadPage(lba, Seconds(39));
    ftl::FtlResult b = twin.ReadPage(lba, Seconds(39));
    ASSERT_EQ(a.status, b.status) << lba;
    if (a.ok()) {
      EXPECT_EQ(a.data.stamp, b.data.stamp) << lba;
      EXPECT_EQ(a.data.stamp, 100 + lba) << lba;
    }
  }
  EXPECT_EQ(crashed.CheckInvariants(), "");
}

TEST(RebuildTest, DeviceKeepsWorkingAfterRebuild) {
  ftl::PageFtl ftl(SmallFtl());
  for (Lba lba = 0; lba < 64; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(lba), Seconds(1)).ok());
  }
  (void)ftl.RebuildFromNand(Seconds(2));

  // Overwrites after the rebuild must keep producing backups (the global
  // write sequence continued past the scan maximum).
  for (Lba lba = 0; lba < 64; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(500 + lba), Seconds(3)).ok());
  }
  EXPECT_EQ(ftl.RecoveryQueueSize(), 64u);
  EXPECT_EQ(ftl.CheckInvariants(), "");

  ftl.SetReadOnly(true);
  ftl.RollBack(Seconds(5));
  for (Lba lba = 0; lba < 64; ++lba) {
    EXPECT_EQ(ftl.ReadPage(lba, Seconds(6)).data.stamp, lba) << lba;
  }
}

TEST(RebuildTest, TrimsInsideTheBurstRollBackIdentically) {
  // Trim persistence: each trim programs a tombstone page (FtlConfig::
  // trim_tombstones), so the OOB scan replays in-window trims instead of
  // resurrecting the trimmed version — the wart DESIGN.md §8 used to
  // document is fixed. The rebuilt device must match its uncrashed twin
  // both right after the rebuild (trimmed LBAs stay unmapped) and after
  // rollback (both restore the pre-burst mapping).
  ftl::PageFtl crashed(SmallFtl());
  ftl::PageFtl twin(SmallFtl());
  for (Lba lba = 0; lba < 20; ++lba) {
    ASSERT_TRUE(crashed.WritePage(lba, Page(100 + lba), Seconds(1)).ok());
    ASSERT_TRUE(twin.WritePage(lba, Page(100 + lba), Seconds(1)).ok());
  }
  crashed.ReleaseExpired(Seconds(15));
  twin.ReleaseExpired(Seconds(15));

  // Ransomware that trims (deletes) half its victims mid-burst.
  for (Lba lba = 0; lba < 10; ++lba) {
    ASSERT_TRUE(crashed.TrimPage(lba, Seconds(30)).ok());
    ASSERT_TRUE(twin.TrimPage(lba, Seconds(30)).ok());
  }
  (void)crashed.RebuildFromNand(Seconds(31));
  EXPECT_EQ(crashed.CheckInvariants(), "");

  // The tombstones replayed: trimmed LBAs are unmapped on the rebuilt
  // device exactly as on the twin, with the trim still recoverable.
  for (Lba lba = 0; lba < 10; ++lba) {
    EXPECT_EQ(crashed.ReadPage(lba, Seconds(31)).status,
              ftl::FtlStatus::kUnmapped)
        << lba;
    EXPECT_FALSE(crashed.Lookup(lba).has_value()) << lba;
  }
  EXPECT_EQ(crashed.TrimJournalSize(), twin.TrimJournalSize());

  crashed.SetReadOnly(true);
  twin.SetReadOnly(true);
  crashed.RollBack(Seconds(36));
  twin.RollBack(Seconds(36));
  for (Lba lba = 0; lba < 20; ++lba) {
    ftl::FtlResult a = crashed.ReadPage(lba, Seconds(37));
    ftl::FtlResult b = twin.ReadPage(lba, Seconds(37));
    ASSERT_EQ(a.status, b.status) << lba;
    ASSERT_TRUE(a.ok()) << lba;
    EXPECT_EQ(a.data.stamp, 100 + lba) << lba;
  }
}

TEST(RebuildTest, GrownBadBlocksSurviveThePowerCut) {
  ftl::FtlConfig c = SmallFtl();
  c.fault_plan.FailProgramAtOp(3);
  ftl::PageFtl ftl(c);
  for (Lba lba = 0; lba < 16; ++lba) {
    ASSERT_TRUE(ftl.WritePage(lba, Page(lba), Seconds(1)).ok());
  }
  ASSERT_EQ(ftl.RetiredBlockCount(), 1u);

  ftl::PageFtl::RebuildReport report = ftl.RebuildFromNand(Seconds(2));
  EXPECT_EQ(report.blocks_retired, 1u);
  EXPECT_EQ(ftl.RetiredBlockCount(), 1u);
  EXPECT_EQ(ftl.CheckInvariants(), "");
  for (Lba lba = 0; lba < 16; ++lba) {
    EXPECT_EQ(ftl.ReadPage(lba, Seconds(3)).data.stamp, lba) << lba;
  }
}

// ---------------------------------------------------------------------------
// Host layer: PowerLossInjector against the assembled Ssd.

host::SsdConfig SmallSsd() {
  host::SsdConfig c;
  c.ftl.geometry = nand::TestGeometry();
  c.ftl.latency = nand::LatencyModel::Zero();
  c.detector.slice_length = Seconds(1);
  c.detector.window_slices = 10;
  c.detector.score_threshold = 3;
  return c;
}

/// Tree voting ransomware iff OWIO > 30 (deterministic for tests).
core::DecisionTree SimpleTree() {
  std::vector<core::DecisionTree::Node> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = core::FeatureId::kOwIo;
  nodes[0].threshold = 30.0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].is_leaf = true;
  nodes[1].label = false;
  nodes[2].is_leaf = true;
  nodes[2].label = true;
  return core::DecisionTree(std::move(nodes));
}

TEST(PowerLossInjectorTest, CrashBeforeAttackStillDetectsAndRollsBack) {
  host::Ssd ssd(SmallSsd(), SimpleTree());

  // Benign fill: 64 single-block writes; request i carries stamp 65536 * i.
  std::vector<IoRequest> trace;
  for (Lba lba = 0; lba < 64; ++lba) {
    trace.push_back(
        {Seconds(1) + CostOf(lba, 1000), lba, 1, IoMode::kWrite});
  }
  std::size_t benign_requests = trace.size();
  // Attack after the crash point: read + overwrite sweeps of 40 blocks.
  for (int s = 0; s < 6; ++s) {
    SimTime t = Seconds(21 + s);
    trace.push_back({t, 0, 40, IoMode::kRead});
    trace.push_back({t + 1000, 0, 40, IoMode::kWrite});
  }

  host::PowerLossConfig plc;
  plc.crash_times = {Seconds(20)};
  host::PowerLossInjector injector(ssd, plc);
  host::PowerLossReport report = injector.Replay(trace, /*stamp_base=*/0);

  EXPECT_EQ(report.crashes, 1u);
  ASSERT_EQ(report.rebuilds.size(), 1u);
  EXPECT_EQ(report.rebuilds[0].mappings_restored, 64u);
  EXPECT_EQ(report.requests_submitted, trace.size());

  ssd.IdleUntil(ssd.Clock().Now() + Seconds(2));
  ASSERT_TRUE(ssd.AlarmActive());
  ssd.RollBackNow();

  // The attacked LBAs hold their benign payloads again.
  for (Lba lba = 0; lba < 40; ++lba) {
    ftl::FtlResult r = ssd.Ftl().ReadPage(lba, ssd.Clock().Now());
    ASSERT_TRUE(r.ok()) << lba;
    EXPECT_EQ(r.data.stamp, 65536u * lba) << lba;
  }
  (void)benign_requests;
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
  EXPECT_EQ(ssd.Ftl().Stats().rebuilds, 1u);
}

TEST(PowerLossInjectorTest, CrashMidAttackStillRestoresPreAttackState) {
  host::Ssd ssd(SmallSsd(), SimpleTree());

  std::vector<IoRequest> trace;
  for (Lba lba = 0; lba < 64; ++lba) {
    trace.push_back(
        {Seconds(1) + CostOf(lba, 1000), lba, 1, IoMode::kWrite});
  }
  // Attack spans the crash at t = 23 s: backups made before the cut must be
  // honored by the rollback after it.
  for (int s = 0; s < 8; ++s) {
    SimTime t = Seconds(21 + s);
    trace.push_back({t, 0, 40, IoMode::kRead});
    trace.push_back({t + 1000, 0, 40, IoMode::kWrite});
  }

  host::PowerLossConfig plc;
  plc.crash_times = {Seconds(23)};
  host::PowerLossInjector injector(ssd, plc);
  host::PowerLossReport report = injector.Replay(trace, /*stamp_base=*/0);
  EXPECT_EQ(report.crashes, 1u);

  ssd.IdleUntil(ssd.Clock().Now() + Seconds(2));
  ASSERT_TRUE(ssd.AlarmActive());
  // The alarm fired after the reboot; its 10 s horizon predates the attack's
  // first write, so every backup — including those recovered by the OOB
  // scan — participates.
  ssd.RollBackNow();
  for (Lba lba = 0; lba < 40; ++lba) {
    ftl::FtlResult r = ssd.Ftl().ReadPage(lba, ssd.Clock().Now());
    ASSERT_TRUE(r.ok()) << lba;
    EXPECT_EQ(r.data.stamp, 65536u * lba) << lba;
  }
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
}

TEST(PowerLossInjectorTest, MultipleCrashesAreSurvivable) {
  host::Ssd ssd(SmallSsd(), SimpleTree());
  std::vector<IoRequest> trace;
  for (Lba lba = 0; lba < 48; ++lba) {
    trace.push_back({Seconds(1) + CostOf(lba, Milliseconds(100)),
                     lba, 1, IoMode::kWrite});
  }
  host::PowerLossConfig plc;
  plc.crash_times = {Seconds(2), Seconds(4), Seconds(5)};
  host::PowerLossInjector injector(ssd, plc);
  host::PowerLossReport report = injector.Replay(trace, /*stamp_base=*/0);
  EXPECT_EQ(report.crashes, 3u);
  EXPECT_EQ(report.request_errors, 0u);
  EXPECT_EQ(ssd.Ftl().Stats().rebuilds, 3u);
  for (Lba lba = 0; lba < 48; ++lba) {
    ftl::FtlResult r = ssd.Ftl().ReadPage(lba, ssd.Clock().Now());
    ASSERT_TRUE(r.ok()) << lba;
    EXPECT_EQ(r.data.stamp, 65536u * lba) << lba;
  }
  EXPECT_EQ(ssd.Ftl().CheckInvariants(), "");
}

}  // namespace
}  // namespace insider
