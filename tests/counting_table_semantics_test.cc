// Deeper semantic tests of the counting table: the footnote-1 read-recency
// rule, the WL give-back on re-read, the eviction time index, and
// split/merge chains — the behaviors the feature definitions depend on.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/counting_table.h"

namespace insider::core {
namespace {

CountingTable::Config WithWindow(std::size_t n) {
  CountingTable::Config c;
  c.window_slices = n;
  return c;
}

TEST(ReadRecencyTest, WriteWithinWindowCounts) {
  CountingTable t(WithWindow(10));
  t.OnRead(100, 1, 0);
  t.OnWrite(100, 1, 9);  // 9 slices later, still inside the window
  EXPECT_EQ(t.Counters().overwrites, 1u);
}

TEST(ReadRecencyTest, WriteJustPastWindowDoesNotCount) {
  CountingTable t(WithWindow(10));
  t.OnRead(100, 1, 0);
  t.OnWrite(100, 1, 10);  // exactly N slices later: stale (footnote 1)
  EXPECT_EQ(t.Counters().overwrites, 0u);
}

TEST(ReadRecencyTest, StaleWriteDoesNotRefreshEntry) {
  // A stale write must not keep an old run alive past the window slide.
  CountingTable t(WithWindow(10));
  t.OnRead(100, 4, 0);
  t.OnWrite(100, 4, 11);  // stale, not counted
  t.DropOlderThan(5);
  EXPECT_EQ(t.EntryCount(), 0u);
}

TEST(ReadRecencyTest, ReReadRestartsTheClock) {
  CountingTable t(WithWindow(10));
  t.OnRead(100, 1, 0);
  t.OnRead(100, 1, 8);   // re-read refreshes recency
  t.OnWrite(100, 1, 15); // 7 slices after the re-read
  EXPECT_EQ(t.Counters().overwrites, 1u);
}

TEST(ReadRecencyTest, PerBlockRecencyIsIndependent) {
  CountingTable t(WithWindow(10));
  t.OnRead(100, 1, 0);
  t.OnRead(101, 1, 8);  // same run after extension? (not adjacent: new run)
  t.OnWrite(100, 1, 11);  // stale
  t.OnWrite(101, 1, 11);  // fresh
  EXPECT_EQ(t.Counters().overwrites, 1u);
}

TEST(WlGiveBackTest, ReReadDecrementsWl) {
  CountingTable t;
  t.OnRead(100, 4, 0);
  t.OnWrite(100, 4, 0);
  t.ForEach([](const CountingEntry& e) { EXPECT_EQ(e.wl, 4u); });
  t.OnRead(100, 2, 1);  // two blocks re-armed
  t.ForEach([](const CountingEntry& e) { EXPECT_EQ(e.wl, 2u); });
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(WlGiveBackTest, WlNeverExceedsRlUnderReadWriteCycles) {
  // The wiping-with-verify pattern: read, write, read, write ... per block.
  CountingTable t;
  for (int cycle = 0; cycle < 20; ++cycle) {
    t.OnRead(100, 8, cycle);
    t.OnWrite(100, 8, cycle);
  }
  t.ForEach([](const CountingEntry& e) {
    EXPECT_LE(e.wl, e.rl);
    EXPECT_EQ(e.rl, 8u);
  });
  EXPECT_EQ(t.CheckInvariants(), "");
  // Every cycle's writes count: the detector *should* see repeated
  // read-then-overwrite as sustained overwriting.
  EXPECT_EQ(t.Counters().overwrites, 160u);
}

TEST(TimeIndexTest, EvictionPicksLeastRecentlyActive) {
  CountingTable::Config cfg;
  cfg.max_entries = 3;
  CountingTable t(cfg);
  t.OnRead(100, 1, 0);
  t.OnRead(200, 1, 1);
  t.OnRead(300, 1, 2);
  t.OnWrite(100, 1, 3);  // refresh the oldest run via a write
  t.OnRead(400, 1, 4);   // capacity eviction: 200 is now the oldest
  bool has_200 = false, has_100 = false;
  t.ForEach([&](const CountingEntry& e) {
    has_200 |= (e.lba == 200);
    has_100 |= (e.lba == 100);
  });
  EXPECT_FALSE(has_200);
  EXPECT_TRUE(has_100);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(TimeIndexTest, DropOlderThanUsesLastActivity) {
  CountingTable t;
  t.OnRead(100, 1, 0);
  t.OnRead(200, 1, 0);
  t.OnRead(100, 1, 6);  // refresh 100
  t.DropOlderThan(3);
  EXPECT_EQ(t.EntryCount(), 1u);
  t.ForEach([](const CountingEntry& e) { EXPECT_EQ(e.lba, 100u); });
}

TEST(TimeIndexTest, MergeKeepsNewestTime) {
  CountingTable t;
  t.OnRead(100, 3, 0);
  t.OnRead(104, 3, 5);
  t.OnRead(103, 1, 5);  // merge bridge
  ASSERT_EQ(t.EntryCount(), 1u);
  t.DropOlderThan(3);  // merged entry carries the newest time (5)
  EXPECT_EQ(t.EntryCount(), 1u);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(SplitChainTest, MultipleSplitsPartitionTheRun) {
  CountingTable t;
  t.OnRead(100, 16, 0);
  t.OnWrite(100, 1, 0);   // ow run at head
  t.OnWrite(108, 1, 0);   // split 1
  t.OnWrite(104, 1, 0);   // split 2 (mid left part)
  EXPECT_EQ(t.EntryCount(), 3u);
  std::uint32_t covered = 0;
  t.ForEach([&](const CountingEntry& e) {
    covered += e.rl;
    EXPECT_LE(e.wl, e.rl);
  });
  EXPECT_EQ(covered, 16u);
  EXPECT_EQ(t.KeyCount(), 16u);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(SplitChainTest, SplitKeepsOverwriteAccounting) {
  CountingTable t;
  t.OnRead(100, 10, 0);
  // Contiguous ow run 100..104, then a jump to 107.
  for (Lba b = 100; b <= 104; ++b) t.OnWrite(b, 1, 0);
  t.OnWrite(107, 1, 0);
  EXPECT_EQ(t.Counters().overwrites, 6u);
  std::uint32_t wl_total = 0;
  t.ForEach([&](const CountingEntry& e) { wl_total += e.wl; });
  EXPECT_EQ(wl_total, 6u);
}

TEST(HashCapacityTest, EvictionKeepsIndexAndRunsInSync) {
  CountingTable::Config cfg;
  cfg.max_entries = 500;
  cfg.max_hash_keys = 256;
  CountingTable t(cfg);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    t.OnRead(rng.Below(100000),
             static_cast<std::uint32_t>(1 + rng.Below(16)), i / 20);
  }
  EXPECT_EQ(t.CheckInvariants(), "");
  EXPECT_LE(t.KeyCount(), 256u + 16u);
}

TEST(AverageRunLengthTest, TracksContiguousStretches) {
  CountingTable t;
  // A 32-block contiguous overwrite (one entry, wl=32)...
  t.OnRead(1000, 32, 0);
  t.OnWrite(1000, 32, 0);
  // ...and four scattered single-block overwrites.
  for (Lba b : {5000u, 6000u, 7000u, 8000u}) {
    t.OnRead(b, 1, 0);
    t.OnWrite(b, 1, 0);
  }
  // Mean of {32, 1, 1, 1, 1} = 7.2.
  EXPECT_DOUBLE_EQ(t.AverageOverwriteRunLength(), 7.2);
}

class WindowParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowParamTest, RecencyHorizonScalesWithWindow) {
  std::size_t n = GetParam();
  CountingTable t(WithWindow(n));
  t.OnRead(100, 1, 0);
  t.OnWrite(100, 1, static_cast<SliceIndex>(n) - 1);
  EXPECT_EQ(t.Counters().overwrites, 1u);

  CountingTable t2(WithWindow(n));
  t2.OnRead(100, 1, 0);
  t2.OnWrite(100, 1, static_cast<SliceIndex>(n));
  EXPECT_EQ(t2.Counters().overwrites, 0u);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowParamTest,
                         ::testing::Values(1, 2, 5, 10, 20, 60));

class TableFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TableFuzzTest, InvariantsHoldUnderSeededTraffic) {
  Rng rng(GetParam());
  CountingTable::Config cfg;
  cfg.max_entries = 32 + rng.Below(128);
  cfg.max_hash_keys = 512 + rng.Below(4096);
  CountingTable t(cfg);
  SliceIndex slice = 0;
  for (int op = 0; op < 8000; ++op) {
    Lba lba = rng.Below(2048);
    std::uint32_t len = 1 + static_cast<std::uint32_t>(rng.Below(12));
    double dice = rng.Uniform();
    if (dice < 0.45) {
      t.OnRead(lba, len, slice);
    } else {
      t.OnWrite(lba, len, slice);
    }
    if (op % 400 == 0) {
      t.EndSlice();
      ++slice;
      t.DropOlderThan(slice - 10);
      ASSERT_EQ(t.CheckInvariants(), "")
          << "seed " << GetParam() << " op " << op;
    }
  }
  EXPECT_EQ(t.CheckInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace insider::core
