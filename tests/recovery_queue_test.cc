#include <gtest/gtest.h>

#include <vector>

#include "ftl/recovery_queue.h"

namespace insider::ftl {
namespace {

TEST(RecoveryQueueTest, StartsEmpty) {
  RecoveryQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(RecoveryQueueTest, PushGuardsPpa) {
  RecoveryQueue q;
  q.Push(10, 100, Seconds(1));
  EXPECT_TRUE(q.Guards(100));
  EXPECT_FALSE(q.Guards(101));
  EXPECT_EQ(q.Size(), 1u);
}

TEST(RecoveryQueueTest, ReleaseUpToHonorsHorizon) {
  RecoveryQueue q;
  q.Push(1, 100, Seconds(1));
  q.Push(2, 101, Seconds(2));
  q.Push(3, 102, Seconds(3));
  std::vector<Lba> released;
  q.ReleaseUpTo(Seconds(2),
                [&](const BackupEntry& e) { released.push_back(e.lba); });
  EXPECT_EQ(released, (std::vector<Lba>{1, 2}));
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_TRUE(q.Guards(102));
  EXPECT_FALSE(q.Guards(100));
}

TEST(RecoveryQueueTest, CapacityEvictsOldest) {
  RecoveryQueue q(2);
  EXPECT_FALSE(q.Push(1, 100, 1).has_value());
  EXPECT_FALSE(q.Push(2, 101, 2).has_value());
  auto evicted = q.Push(3, 102, 3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->lba, 1u);
  EXPECT_EQ(evicted->old_ppa, 100u);
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_FALSE(q.Guards(100));
}

TEST(RecoveryQueueTest, RelocateFollowsGc) {
  RecoveryQueue q;
  q.Push(5, 200, 10);
  EXPECT_TRUE(q.Relocate(200, 300));
  EXPECT_FALSE(q.Guards(200));
  EXPECT_TRUE(q.Guards(300));
  EXPECT_FALSE(q.Relocate(200, 400));  // already moved
  // Rollback must revert to the *new* location.
  std::size_t n = q.RollBack(0, [&](const BackupEntry& e) {
    EXPECT_EQ(e.old_ppa, 300u);
  });
  EXPECT_EQ(n, 1u);
}

TEST(RecoveryQueueTest, RelocateAfterPopMiddleOfQueue) {
  // Regression for the id/offset bookkeeping: relocate an entry after the
  // head has advanced.
  RecoveryQueue q;
  q.Push(1, 100, 1);
  q.Push(2, 101, 2);
  q.Push(3, 102, 3);
  q.ReleaseUpTo(1, [](const BackupEntry&) {});  // pop entry (1,100)
  EXPECT_TRUE(q.Relocate(102, 500));
  std::vector<nand::Ppa> ppas;
  q.ForEach([&](const BackupEntry& e) { ppas.push_back(e.old_ppa); });
  EXPECT_EQ(ppas, (std::vector<nand::Ppa>{101, 500}));
}

TEST(RecoveryQueueTest, RollBackNewestFirstStopsAtHorizon) {
  RecoveryQueue q;
  q.Push(1, 100, Seconds(1));
  q.Push(2, 101, Seconds(5));
  q.Push(3, 102, Seconds(9));
  std::vector<Lba> reverted;
  std::size_t n = q.RollBack(
      Seconds(4), [&](const BackupEntry& e) { reverted.push_back(e.lba); });
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(reverted, (std::vector<Lba>{3, 2}));  // newest first
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_TRUE(q.Guards(100));
}

TEST(RecoveryQueueTest, RollBackSameLbaChainEndsAtOldestVersion) {
  // LBA 7 overwritten three times within the window: the final revert must
  // leave the *oldest* (pre-window) version, exactly as Fig. 5 requires.
  RecoveryQueue q;
  q.Push(7, 100, Seconds(11));
  q.Push(7, 101, Seconds(12));
  q.Push(7, 102, Seconds(13));
  Lba last_restored = kInvalidLba;
  nand::Ppa last_ppa = nand::kInvalidPpa;
  q.RollBack(Seconds(10), [&](const BackupEntry& e) {
    last_restored = e.lba;
    last_ppa = e.old_ppa;
  });
  EXPECT_EQ(last_restored, 7u);
  EXPECT_EQ(last_ppa, 100u);  // the oldest backup applied last
  EXPECT_TRUE(q.Empty());
}

TEST(RecoveryQueueTest, PopOldestFifoOrder) {
  RecoveryQueue q;
  q.Push(1, 100, 1);
  q.Push(2, 101, 2);
  auto e = q.PopOldest();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->lba, 1u);
  e = q.PopOldest();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->lba, 2u);
  EXPECT_FALSE(q.PopOldest().has_value());
}

TEST(RecoveryQueueTest, PackedEntryMatchesPaperTableIII) {
  EXPECT_EQ(RecoveryQueue::PackedEntryBytes(), 12u);
}

TEST(RecoveryQueueTest, ManyPushReleaseCyclesKeepIndexConsistent) {
  RecoveryQueue q;
  SimTime t = 0;
  nand::Ppa ppa = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      q.Push(static_cast<Lba>(i), ppa++, t++);
    }
    q.ReleaseUpTo(t - 5, [](const BackupEntry&) {});
  }
  // Every remaining entry must still be guarded at its recorded PPA.
  q.ForEach([&](const BackupEntry& e) { EXPECT_TRUE(q.Guards(e.old_ppa)); });
}

}  // namespace
}  // namespace insider::ftl
