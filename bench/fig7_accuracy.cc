// Fig. 7 reproduction: FAR/FRR of the trained detector vs score threshold,
// per background-application class, on the Table I *testing* scenarios
// (ransomware families unseen during training).
//
// Expected shape (paper): at threshold 3, FRR = 0% everywhere and FAR = 0%
// except a few percent under heavy-overwriting backgrounds (data wiping).
#include <cstdio>

#include "bench_util.h"
#include "host/experiment.h"

int main() {
  using namespace insider;
  core::DecisionTree tree = bench::TrainPaperTree();
  std::printf("Trained ID3 tree:\n%s\n", tree.ToPrettyString().c_str());

  host::AccuracyConfig ac;
  ac.scenario = bench::BenchScenario();
  ac.repetitions = bench::RepsFromEnv(5);

  bench::PrintHeader("Table I testing scenarios");
  std::printf("%-28s %-18s %s\n", "background", "ransomware", "category");
  for (const host::ScenarioSpec& s : host::TestingScenarios()) {
    std::printf("%-28s %-18s %s\n", s.label.c_str(),
                s.ransomware.empty() ? "-" : s.ransomware.c_str(),
                wl::AppCategoryName(wl::CategoryOf(s.app)));
  }

  std::vector<host::CategoryAccuracy> acc =
      host::EvaluateAccuracy(tree, host::TestingScenarios(), ac);

  bench::PrintHeader("Fig. 7: FAR / FRR vs score threshold (percent)");
  for (const host::CategoryAccuracy& ca : acc) {
    std::printf("\n[%s]  (%zu ransomware runs, %zu benign runs)\n",
                wl::AppCategoryName(ca.category),
                ca.points.empty() ? 0 : ca.points[0].ransom_runs,
                ca.points.empty() ? 0 : ca.points[0].benign_runs);
    std::printf("  %-10s", "threshold");
    for (const host::AccuracyPoint& p : ca.points) {
      std::printf("%8d", p.threshold);
    }
    std::printf("\n  %-10s", "FAR %");
    for (const host::AccuracyPoint& p : ca.points) {
      std::printf("%8.1f", 100.0 * p.far);
    }
    std::printf("\n  %-10s", "FRR %");
    for (const host::AccuracyPoint& p : ca.points) {
      std::printf("%8.1f", 100.0 * p.frr);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: FRR 0%% at threshold 3 in every category; "
              "FAR 0%%\nexcept small values under HeavyOverwriting "
              "(paper: at most 5%%).\n");
  return 0;
}
