// Fig. 8 reproduction: software time added by SSD-Insider to each 4-KB I/O.
//
// The paper reports 477 ns (read) / 1372 ns (write) for the bare FTL code
// and +147 ns / +254 ns for SSD-Insider's detection/recovery bookkeeping on
// a 1.2-GHz core — negligible next to 50-1000 us NAND latency. We measure
// our own implementation's hot paths with google-benchmark: the FTL
// write/read path with a zero-latency NAND model, and the detector's
// per-request update, so the reported per-op nanoseconds decompose the same
// way ("FTL code" vs "+ SSD-Insider").
#include <benchmark/benchmark.h>

#include "core/detector.h"
#include "core/pretrained.h"
#include "ftl/page_ftl.h"
#include "host/scenario.h"

namespace {

using namespace insider;

ftl::FtlConfig BenchFtlConfig(bool delayed) {
  ftl::FtlConfig c;
  c.geometry.channels = 4;
  c.geometry.ways = 4;
  c.geometry.blocks_per_chip = 64;
  c.geometry.pages_per_block = 64;
  c.latency = nand::LatencyModel::Zero();
  c.delayed_deletion = delayed;
  // Healthy over-provisioning so steady-state GC reflects normal operation
  // rather than end-of-capacity thrash; identical for both modes so the
  // delta is SSD-Insider's bookkeeping.
  c.exported_fraction = 0.7;
  return c;
}

/// A realistic mixed request pattern (testing-trace flavored): mostly
/// sequential file reads followed by overwrites, some random traffic.
std::vector<IoRequest> BenchRequests(std::size_t count, Lba space) {
  std::vector<IoRequest> reqs;
  reqs.reserve(count);
  Rng rng(12345);
  SimTime t = 0;
  Lba cursor = 0;
  while (reqs.size() < count) {
    t += 100;
    // Single-block requests so the reported ns are per 4-KB I/O, directly
    // comparable to the paper's Fig. 8 numbers.
    reqs.push_back({t, cursor, 1, IoMode::kRead});
    reqs.push_back({t + 50, cursor, 1, IoMode::kWrite});
    cursor = (cursor + 1 + rng.Below(64)) % (space - 64);
  }
  reqs.resize(count);
  return reqs;
}

// --- FTL code alone (the paper's baseline bars) ---------------------------

void BM_FtlWrite4K(benchmark::State& state) {
  ftl::PageFtl ftl(BenchFtlConfig(false));
  Lba space = ftl.ExportedLbas();
  Lba lba = 0;
  SimTime t = 0;
  for (auto _ : state) {
    nand::PageData d;
    d.stamp = RawMicrosU64(t);
    benchmark::DoNotOptimize(ftl.WritePage(lba, std::move(d), t));
    lba = (lba + 1) % space;
    t += 2000;
  }
  state.SetLabel("conventional FTL write path (zero-latency NAND)");
}
BENCHMARK(BM_FtlWrite4K);

void BM_FtlRead4K(benchmark::State& state) {
  ftl::PageFtl ftl(BenchFtlConfig(false));
  Lba space = ftl.ExportedLbas();
  for (Lba lba = 0; lba < space / 2; ++lba) {
    ftl.WritePage(lba, {lba, {}}, 0);
  }
  Lba lba = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.ReadPage(lba, 0));
    lba = (lba + 1) % (space / 2);
  }
  state.SetLabel("conventional FTL read path");
}
BENCHMARK(BM_FtlRead4K);

// --- + SSD-Insider (delayed deletion + detector update) -------------------

void BM_InsiderFtlWrite4K(benchmark::State& state) {
  ftl::PageFtl ftl(BenchFtlConfig(true));
  Lba space = ftl.ExportedLbas();
  Lba lba = 0;
  SimTime t = 0;
  for (auto _ : state) {
    nand::PageData d;
    d.stamp = RawMicrosU64(t);
    benchmark::DoNotOptimize(ftl.WritePage(lba, std::move(d), t));
    lba = (lba + 1) % space;
    // Virtual time paced so the retained working set (retention window x
    // write rate) fits the over-provisioning, as it does on a real device;
    // otherwise the bench measures space-pressure thrash, not the write
    // path.
    t += 2000;
  }
  state.SetLabel("insider FTL write path (delayed deletion on)");
}
BENCHMARK(BM_InsiderFtlWrite4K);

void BM_DetectorObserveWrite(benchmark::State& state) {
  core::DetectorConfig dc;
  core::Detector det(dc, core::PretrainedTree());
  std::vector<IoRequest> reqs = BenchRequests(1 << 16, 1 << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    det.OnRequest(reqs[i]);
    i = (i + 1) % reqs.size();
  }
  state.SetLabel("detector per-request header update (the +ns of Fig. 8)");
}
BENCHMARK(BM_DetectorObserveWrite);

void BM_DetectorSliceClose(benchmark::State& state) {
  // Cost of the per-second feature computation + tree inference, amortized
  // over a slice's requests in deployment; measured standalone here.
  core::DetectorConfig dc;
  core::Detector det(dc, core::PretrainedTree());
  std::vector<IoRequest> reqs = BenchRequests(2048, 1 << 20);
  SimTime slice_end = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (IoRequest r : reqs) {
      r.time += slice_end;
      det.OnRequest(r);
    }
    state.ResumeTiming();
    slice_end += Seconds(1);
    det.AdvanceTo(slice_end);
  }
  state.SetLabel("per-slice feature extraction + ID3 inference");
}
BENCHMARK(BM_DetectorSliceClose);

void BM_RollbackPerEntry(benchmark::State& state) {
  // Real (wall-clock) cost of reverting one mapping entry, the operation
  // whose count determines the paper's <1 s recovery claim.
  for (auto _ : state) {
    state.PauseTiming();
    ftl::PageFtl ftl(BenchFtlConfig(true));
    Lba n = 4096;
    for (Lba lba = 0; lba < n; ++lba) ftl.WritePage(lba, {1, {}}, Seconds(1));
    for (Lba lba = 0; lba < n; ++lba) {
      ftl.WritePage(lba, {2, {}}, Seconds(20));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(ftl.RollBack(Seconds(21)));
    state.PauseTiming();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
  state.SetLabel("full 4096-entry rollback (items/s = entries/s)");
}
BENCHMARK(BM_RollbackPerEntry);

}  // namespace

BENCHMARK_MAIN();
