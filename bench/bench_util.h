// Shared helpers for the benchmark/reproduction binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/decision_tree.h"
#include "host/scenario.h"
#include "host/train.h"

namespace insider::bench {

/// Environment-tunable repetition count so CI can run the benches fast
/// while a full reproduction uses the paper's 20 repetitions:
///   INSIDER_BENCH_REPS=20 ./fig7_accuracy
inline std::size_t RepsFromEnv(std::size_t def) {
  if (const char* env = std::getenv("INSIDER_BENCH_REPS")) {
    long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return def;
}

/// Monotonic wall-clock seconds. Virtual SimTime measures the simulated
/// device; this measures the simulator itself (events/sec, time-to-simulate).
inline double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Scenario sizing shared by the reproduction benches.
inline host::ScenarioConfig BenchScenario() {
  host::ScenarioConfig c;
  c.duration = Seconds(40);
  c.ransom_start = Seconds(12);
  c.fileset_files = 1200;
  return c;
}

/// Train the deployed tree exactly as the paper does (Table I training
/// rows through ID3). Falls back to more seeds for stability.
inline core::DecisionTree TrainPaperTree() {
  host::TrainConfig tc;
  tc.scenario = BenchScenario();
  tc.seeds_per_scenario = 3;
  std::fprintf(stderr, "[bench] training ID3 tree on Table I scenarios...\n");
  core::DecisionTree tree = host::TrainDefaultTree(tc);
  std::fprintf(stderr, "[bench] tree: %zu nodes, depth %zu\n",
               tree.NodeCount(), tree.Depth());
  return tree;
}

inline void PrintHeader(const char* title) {
  std::printf("==============================================================="
              "=\n%s\n"
              "==============================================================="
              "=\n",
              title);
}

}  // namespace insider::bench
