// Fig. 2 reproduction: all six features' correlation with ransomware
// activity, and cumulative/summary values that separate ransomware from the
// confusing background applications.
//
// Expected shape (paper): OWST/PWIO/AVGWIO correlate strongly with the
// active period; data wiping shows high OWIO but low OWST and long AVGWIO;
// slow ransomware (Jaff) is exposed by PWIO rather than OWIO.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/detector.h"
#include "host/experiment.h"

namespace {

using namespace insider;

struct FeatureSeries {
  std::string name;
  std::array<std::vector<double>, core::kFeatureCount> feature;
  std::vector<double> activity;
};

FeatureSeries Extract(const char* ransomware, wl::AppKind app,
                      std::uint64_t seed) {
  host::ScenarioConfig sc = bench::BenchScenario();
  host::ScenarioSpec spec{app, ransomware ? ransomware : "", ""};
  host::BuiltScenario built = host::BuildScenario(spec, sc, seed);

  core::DetectorConfig dc;
  core::Detector extractor(dc, core::DecisionTree{});
  std::map<core::SliceIndex, double> active;
  SimTime last = 0;
  for (const wl::TaggedRequest& t : built.merged) {
    extractor.OnRequest(t.request);
    last = t.request.time;
    if (t.source == 1) active[t.request.time / dc.slice_length] += 1.0;
  }
  extractor.AdvanceTo(last + dc.slice_length);

  FeatureSeries out;
  out.name = ransomware ? ransomware : wl::AppKindName(app);
  for (const core::SliceRecord& rec : extractor.History()) {
    for (std::size_t f = 0; f < core::kFeatureCount; ++f) {
      out.feature[f].push_back(rec.features.values[f]);
    }
    auto it = active.find(rec.slice);
    out.activity.push_back(it == active.end() ? 0.0 : it->second);
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 2 (a,c,e,g,h): feature correlation with ransomware activity");
  std::printf("%-16s", "family");
  for (std::size_t f = 0; f < core::kFeatureCount; ++f) {
    std::printf("%10s", core::FeatureName(static_cast<core::FeatureId>(f)));
  }
  std::printf("\n");
  for (const char* fam : {"WannaCry", "Mole", "Jaff", "CryptoShield"}) {
    FeatureSeries s = Extract(fam, wl::AppKind::kNone, 33);
    std::printf("%-16s", fam);
    for (std::size_t f = 0; f < core::kFeatureCount; ++f) {
      std::printf("%10.3f", PearsonCorrelation(s.feature[f], s.activity));
    }
    std::printf("\n");
  }

  bench::PrintHeader(
      "Fig. 2 (b,d,f): per-slice feature averages while each workload runs");
  std::printf("%-24s %10s %10s %10s %10s\n", "workload", "OWST", "PWIO",
              "AVGWIO", "OWIO");
  auto summarize = [](const FeatureSeries& s) {
    std::array<RunningStats, core::kFeatureCount> stats;
    for (std::size_t i = 0; i < s.activity.size(); ++i) {
      // Only slices with any I/O.
      if (s.feature[static_cast<std::size_t>(core::FeatureId::kIo)][i] == 0) {
        continue;
      }
      for (std::size_t f = 0; f < core::kFeatureCount; ++f) {
        stats[f].Add(s.feature[f][i]);
      }
    }
    return stats;
  };
  auto print_row = [&](const std::string& label, const FeatureSeries& s) {
    auto stats = summarize(s);
    // A workload with zero I/O-bearing slices leaves every accumulator
    // empty; Mean() is NaN then and the row reads "nan", not a fake 0.
    std::printf("%-24s %10.3f %10.0f %10.1f %10.0f\n", label.c_str(),
                stats[static_cast<std::size_t>(core::FeatureId::kOwSt)].Mean(),
                stats[static_cast<std::size_t>(core::FeatureId::kPwIo)].Mean(),
                stats[static_cast<std::size_t>(core::FeatureId::kAvgWIo)]
                    .Mean(),
                stats[static_cast<std::size_t>(core::FeatureId::kOwIo)]
                    .Mean());
  };
  for (const char* fam : {"WannaCry", "Mole", "Jaff", "CryptoShield"}) {
    print_row(std::string("ransom:") + fam,
              Extract(fam, wl::AppKind::kNone, 44));
  }
  for (wl::AppKind app :
       {wl::AppKind::kDataWiping, wl::AppKind::kDatabase,
        wl::AppKind::kCloudStorage, wl::AppKind::kIoStress,
        wl::AppKind::kP2pDownload}) {
    print_row(std::string("app:") + wl::AppKindName(app),
              Extract(nullptr, app, 44));
  }
  std::printf(
      "\nExpected shape: ransomware has high OWST and short AVGWIO runs;\n"
      "DataWiping has huge OWIO/PWIO but OWST ~ 1/7 and very long AVGWIO;\n"
      "Jaff's OWIO is small but its PWIO accumulates across the window.\n");
  return 0;
}
