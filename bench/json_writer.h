// Minimal streaming JSON writer for the machine-readable BENCH_*.json
// artifacts the benches emit alongside their human-readable tables, so CI
// and plotting scripts can diff results without scraping stdout.
//
// Usage:
//   JsonWriter w("BENCH_gc.json");
//   w.BeginObject();
//   w.Key("bench").Value("gc_policies");
//   w.Key("rows").BeginArray();
//   w.BeginObject().Key("copies").Value(copies).EndObject();
//   w.EndArray().EndObject();
//
// The writer tracks nesting and comma placement; strings are escaped. It is
// deliberately write-only and unvalidated beyond balancing — the benches
// drive it with literal structure, not untrusted data.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/time.h"

namespace insider::bench {

class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")), path_(path) {}
  ~JsonWriter() {
    if (file_) {
      std::fputc('\n', file_);
      std::fclose(file_);
    }
  }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool Ok() const { return file_ != nullptr; }
  const std::string& Path() const { return path_; }

  JsonWriter& BeginObject() {
    Comma();
    Put('{');
    counts_.push_back(0);
    return *this;
  }
  JsonWriter& EndObject() {
    counts_.pop_back();
    Put('}');
    return *this;
  }
  JsonWriter& BeginArray() {
    Comma();
    Put('[');
    counts_.push_back(0);
    return *this;
  }
  JsonWriter& EndArray() {
    counts_.pop_back();
    Put(']');
    return *this;
  }

  JsonWriter& Key(const char* name) {
    Comma();
    Escaped(name);
    Put(':');
    after_key_ = true;
    return *this;
  }

  JsonWriter& Value(const char* s) {
    Comma();
    Escaped(s);
    return *this;
  }
  JsonWriter& Value(const std::string& s) { return Value(s.c_str()); }
  JsonWriter& Value(bool b) {
    Comma();
    Raw(b ? "true" : "false");
    return *this;
  }
  JsonWriter& Value(double d) {
    Comma();
    if (std::isfinite(d)) {
      if (file_) std::fprintf(file_, "%.10g", d);
    } else {
      Raw("null");  // JSON has no NaN/Inf
    }
    return *this;
  }
  JsonWriter& Value(std::uint64_t v) {
    Comma();
    if (file_) std::fprintf(file_, "%llu", (unsigned long long)v);
    return *this;
  }
  JsonWriter& Value(std::int64_t v) {
    Comma();
    if (file_) std::fprintf(file_, "%lld", (long long)v);
    return *this;
  }
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(unsigned v) { return Value(static_cast<std::uint64_t>(v)); }

  template <typename T>
  JsonWriter& Field(const char* name, T v) {
    Key(name);
    return Value(v);
  }

 private:
  void Put(char c) {
    if (file_) std::fputc(c, file_);
  }
  void Raw(const char* s) {
    if (file_) std::fputs(s, file_);
  }
  /// Emit the separator a new element needs: nothing right after a key,
  /// a comma between siblings inside an object/array.
  void Comma() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!counts_.empty() && counts_.back()++ > 0) Put(',');
  }
  void Escaped(const char* s) {
    Put('"');
    for (; *s; ++s) {
      unsigned char c = static_cast<unsigned char>(*s);
      switch (c) {
        case '"':
          Raw("\\\"");
          break;
        case '\\':
          Raw("\\\\");
          break;
        case '\n':
          Raw("\\n");
          break;
        case '\t':
          Raw("\\t");
          break;
        case '\r':
          Raw("\\r");
          break;
        default:
          if (c < 0x20) {
            if (file_) std::fprintf(file_, "\\u%04x", c);
          } else {
            Put(static_cast<char>(c));
          }
      }
    }
    Put('"');
  }

  std::FILE* file_;
  std::string path_;
  std::vector<std::size_t> counts_;  ///< per-level element count
  bool after_key_ = false;
};

}  // namespace insider::bench
