// Versioning subsystem characterization (src/version).
//
// Part 1 — dedupe & DRAM overhead: a duplicate-heavy workload over a
// protected range (file blocks drawn from a small content pool, the way
// office documents share runs of identical blocks) ages into the
// content-addressed store; reports the dedupe ratio (records stored per
// object page pinned), the NAND bytes pinned, and the store's DRAM index
// cost at packed firmware widths next to the paper's Table III budget.
//
// Part 2 — selective rollback latency vs retained depth: per-LBA chains of
// {4, 16, 64} versions, then one RollBackRange over the protected range;
// reports the modeled firmware duration and restores performed.
//
// Part 3 — frontend cost on unprotected ranges: the mqueue 8-queue x QD32
// write hammer with and without a protected range configured elsewhere on
// the device. The release decision consults the range policies on every
// retirement, so this pins the acceptance bound: IOPS delta <= 1%.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/pretrained.h"
#include "ftl/page_ftl.h"
#include "host/dram.h"
#include "host/ssd.h"
#include "host/ssd_target.h"
#include "io/io_engine.h"
#include "json_writer.h"
#include "version/range_policy.h"
#include "workload/multi_tenant.h"

namespace insider::bench {
namespace {

nand::Geometry MediumGeometry() {
  nand::Geometry g;
  g.channels = 2;
  g.ways = 2;
  g.blocks_per_chip = 128;
  g.pages_per_block = 64;
  return g;  // 32,768 physical pages = 128 MiB at 4 KiB
}

ftl::FtlConfig ProtectedDevice(Lba begin, Lba end, std::uint32_t keep,
                               SimTime window) {
  ftl::FtlConfig cfg;
  cfg.geometry = MediumGeometry();
  cfg.latency = nand::LatencyModel::Zero();
  auto table = std::make_shared<version::RangePolicyTable>();
  table->Add({begin, end, keep, window});
  cfg.range_policies = table;
  return cfg;
}

void DedupeAndDram(JsonWriter& json) {
  PrintHeader("versioning — dedupe ratio and store DRAM overhead");
  const Lba kProtected = 2048;
  const std::size_t kContentPool = 64;  // distinct block contents in flight
  const std::size_t rounds = 2 * RepsFromEnv(2);

  ftl::PageFtl ftl(ProtectedDevice(0, kProtected, 4, Seconds(600)));
  Rng rng(0xDEDu);
  SimTime t = Seconds(1);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (Lba lba = 0; lba < kProtected; ++lba) {
      // Duplicate-heavy content: many LBAs share a block payload.
      std::uint64_t stamp = 0xF00D0000u + rng.Below(kContentPool);
      ftl.WritePage(lba, {stamp, {}}, t);
      t += Microseconds(50);
    }
  }
  ftl.ReleaseExpired(t + Seconds(20));  // age every ring backup into the store

  const ftl::FtlStats& stats = ftl.Stats();
  const version::VersionStore& store = ftl.Store();
  const std::uint64_t page_size = ftl.Config().geometry.page_size;
  const double archived = static_cast<double>(stats.archived_versions);
  const double dedupe_ratio =
      archived > 0 ? static_cast<double>(stats.archive_dedupe_hits) / archived
                   : 0.0;
  const double store_mb =
      static_cast<double>(store.StoreBytes(page_size)) / (1024.0 * 1024.0);
  const double dram_mb =
      static_cast<double>(store.DramBytes()) / (1024.0 * 1024.0);
  const double table3_mb = host::TotalMegabytes(host::PaperDramBudget());

  std::printf("%-28s %12zu\n", "archived versions",
              static_cast<std::size_t>(stats.archived_versions));
  std::printf("%-28s %12zu\n", "dedupe hits",
              static_cast<std::size_t>(stats.archive_dedupe_hits));
  std::printf("%-28s %12.3f\n", "dedupe ratio", dedupe_ratio);
  std::printf("%-28s %12zu\n", "object pages pinned", store.ObjectCount());
  std::printf("%-28s %12zu\n", "version records", store.VersionCount());
  std::printf("%-28s %12.3f\n", "store NAND MiB", store_mb);
  std::printf("%-28s %12.4f\n", "store DRAM MiB (packed)", dram_mb);
  std::printf("%-28s %12.2f\n", "paper Table III DRAM MiB", table3_mb);

  json.Key("dedupe")
      .BeginObject()
      .Field("protected_lbas", static_cast<std::uint64_t>(kProtected))
      .Field("rounds", static_cast<std::uint64_t>(rounds))
      .Field("content_pool", static_cast<std::uint64_t>(kContentPool))
      .Field("archived_versions", stats.archived_versions)
      .Field("dedupe_hits", stats.archive_dedupe_hits)
      .Field("dedupe_ratio", dedupe_ratio)
      .Field("object_pages", static_cast<std::uint64_t>(store.ObjectCount()))
      .Field("version_records",
             static_cast<std::uint64_t>(store.VersionCount()))
      .Field("store_bytes", store.StoreBytes(page_size))
      .Field("store_dram_bytes", store.DramBytes())
      .Field("store_dram_mb", dram_mb)
      .Field("paper_table3_dram_mb", table3_mb)
      .EndObject();
}

void RollbackVsDepth(JsonWriter& json) {
  PrintHeader("versioning — selective rollback latency vs retained depth");
  std::printf("%6s %10s %10s %12s\n", "depth", "retained", "restored",
              "duration_us");
  const Lba kProtected = 256;

  json.Key("rollback").BeginArray();
  for (std::uint32_t depth : {4u, 16u, 64u}) {
    ftl::FtlConfig cfg = ProtectedDevice(0, kProtected, depth, 0);
    cfg.latency = nand::LatencyModel{};  // real media costs for the restores
    ftl::PageFtl ftl(cfg);

    // depth+1 generations, one second apart: after aging, each LBA's chain
    // holds exactly `depth` archived versions.
    for (std::uint32_t g = 0; g <= depth; ++g) {
      SimTime t = Seconds(1 + g);
      for (Lba lba = 0; lba < kProtected; ++lba) {
        ftl.WritePage(lba, {static_cast<std::uint64_t>(g) * 100000 + lba, {}},
                      t);
        t += Microseconds(20);
      }
    }
    ftl.ReleaseExpired(Seconds(1 + depth) + Seconds(15));

    const SimTime restore_point = Seconds(1 + depth / 2) + Milliseconds(500);
    ftl::RangeRollbackReport report = ftl.RollBackRange(
        0, kProtected, restore_point, Seconds(1 + depth) + Seconds(20));

    std::printf("%6u %10zu %10zu %12lld\n", depth, ftl.Store().VersionCount(),
                report.restored, static_cast<long long>(report.duration));
    json.BeginObject()
        .Field("depth", static_cast<std::uint64_t>(depth))
        .Field("protected_lbas", static_cast<std::uint64_t>(kProtected))
        .Field("retained_versions",
               static_cast<std::uint64_t>(ftl.Store().VersionCount()))
        .Field("restored", static_cast<std::uint64_t>(report.restored))
        .Field("failed", static_cast<std::uint64_t>(report.failed))
        .Field("duration_us", static_cast<std::int64_t>(report.duration))
        .EndObject();
  }
  json.EndArray();
}

double WriteHammerIops(bool with_policies) {
  host::SsdConfig cfg;
  cfg.ftl.geometry.channels = 4;
  cfg.ftl.geometry.ways = 4;
  cfg.ftl.geometry.blocks_per_chip = 128;
  cfg.ftl.geometry.pages_per_block = 64;
  cfg.detector_enabled = false;  // isolate frontend + FTL + media
  host::Ssd probe(cfg, core::PretrainedTree());
  const Lba exported = probe.Ftl().ExportedLbas();
  if (with_policies) {
    // Protect the top of the address space; the hammer never touches it,
    // so every release decision runs the policy lookup and archives nothing.
    auto table = std::make_shared<version::RangePolicyTable>();
    table->Add({exported - 1024, exported, 8, Seconds(600)});
    cfg.ftl.range_policies = table;
  }

  const std::size_t kQueues = 8;
  const std::size_t kDepth = 32;
  const std::size_t kCommandsPerQueue = RepsFromEnv(2) * 1000;
  host::Ssd ssd(cfg, core::PretrainedTree());
  host::SsdTarget target(ssd);
  // Each queue hammers its own slice of the unprotected bottom half.
  const Lba region = (exported / 2) / static_cast<Lba>(kQueues);
  Rng rng(0xB10C'0000);
  std::vector<wl::TenantSpec> tenants;
  for (std::size_t q = 0; q < kQueues; ++q) {
    wl::TenantSpec t;
    t.name = "host" + std::to_string(q);
    t.stamp_base = q * 1'000'000ull;
    for (std::size_t i = 0; i < kCommandsPerQueue; ++i) {
      IoRequest req;
      req.time = CostOf(i, 10);
      req.lba = region * q + rng.Below(region);
      req.length = 1;
      req.mode = IoMode::kWrite;
      t.requests.push_back(req);
    }
    tenants.push_back(std::move(t));
  }

  io::EngineConfig ecfg;
  ecfg.queue_count = kQueues;
  ecfg.queue.sq_depth = kDepth;
  io::IoEngine engine(target, ecfg);
  wl::MultiTenantDriver driver(std::move(tenants));
  wl::MultiTenantReport report = driver.Run(engine);
  return report.TotalIops();
}

void FrontendOverhead(JsonWriter& json) {
  PrintHeader("versioning — 8q x QD32 write IOPS, unprotected footprint");
  const double baseline = WriteHammerIops(false);
  const double versioned = WriteHammerIops(true);
  const double delta_pct =
      baseline > 0 ? (baseline - versioned) / baseline * 100.0 : 0.0;
  std::printf("%-28s %12.0f\n", "baseline IOPS", baseline);
  std::printf("%-28s %12.0f\n", "versioning enabled IOPS", versioned);
  std::printf("%-28s %12.4f  (bound: <= 1%%)\n", "delta %", delta_pct);

  json.Key("iops")
      .BeginObject()
      .Field("queues", std::uint64_t{8})
      .Field("depth", std::uint64_t{32})
      .Field("baseline_iops", baseline)
      .Field("versioned_iops", versioned)
      .Field("delta_pct", delta_pct)
      .Field("bound_pct", 1.0)
      .EndObject();
}

}  // namespace
}  // namespace insider::bench

int main() {
  using namespace insider::bench;
  JsonWriter json("BENCH_versioning.json");
  json.BeginObject();
  json.Key("bench").Value("versioning");
  DedupeAndDram(json);
  RollbackVsDepth(json);
  FrontendOverhead(json);
  json.EndObject();
  std::printf("\nwrote %s\n", json.Path().c_str());
  return 0;
}
