// §V-B reproduction: detection latency per testing scenario (paper: every
// ransomware detected within 10 s) and rollback timing on a populated
// device (paper: recovery within 1 s, no data copies).
#include <cstdio>

#include "bench_util.h"
#include "host/experiment.h"

int main() {
  using namespace insider;
  core::DecisionTree tree = bench::TrainPaperTree();

  host::AccuracyConfig ac;
  ac.scenario = bench::BenchScenario();
  ac.repetitions = bench::RepsFromEnv(5);

  bench::PrintHeader("Detection latency on Table I testing scenarios");
  std::printf("%-28s %-18s %8s %10s %10s\n", "background", "ransomware",
              "detect", "mean (s)", "max (s)");
  std::vector<host::LatencyResult> results =
      host::MeasureDetectionLatency(tree, host::TestingScenarios(), ac);
  double worst = 0;
  bool all = true;
  for (const host::LatencyResult& r : results) {
    std::printf("%-28s %-18s %zu/%-6zu %10.2f %10.2f\n", r.spec.label.c_str(),
                r.spec.ransomware.c_str(), r.detected, r.runs,
                r.mean_latency_s, r.max_latency_s);
    worst = std::max(worst, r.max_latency_s);
    all = all && (r.detected == r.runs);
  }
  std::printf("\nall attacks detected: %s   worst latency: %.2f s "
              "(paper bound: 10 s)\n", all ? "yes" : "NO", worst);

  // Rollback timing: fill a device, attack it, roll back, report the
  // modeled firmware time (mapping-table updates only).
  bench::PrintHeader("Instant recovery: rollback timing");
  host::ConsistencyTrialConfig cc;
  cc.seed = 3;
  host::ConsistencyTrialResult r = host::RunConsistencyTrial(tree, cc);
  std::printf("detected: %s, latency %.2f s\n", r.detected ? "yes" : "NO",
              ToSeconds(r.detection_latency));
  std::printf("rollback: %.4f s for a full recovery queue (paper: <1 s)\n",
              ToSeconds(r.rollback_duration));
  std::printf("files recovered intact: %zu/%zu (paper: 0%% data loss)\n",
              r.files_intact, r.files_total);
  return 0;
}
