// §V-B reproduction: detection latency per testing scenario (paper: every
// ransomware detected within 10 s) and rollback timing on a populated
// device (paper: recovery within 1 s, no data copies).
#include <cstdio>

#include "bench_util.h"
#include "core/pretrained.h"
#include "host/experiment.h"
#include "obs/metrics.h"

int main() {
  using namespace insider;
  core::DecisionTree tree = bench::TrainPaperTree();

  host::AccuracyConfig ac;
  ac.scenario = bench::BenchScenario();
  ac.repetitions = bench::RepsFromEnv(5);

  bench::PrintHeader("Detection latency on Table I testing scenarios");
  std::printf("%-28s %-18s %8s %10s %10s\n", "background", "ransomware",
              "detect", "mean (s)", "max (s)");
  std::vector<host::LatencyResult> results =
      host::MeasureDetectionLatency(tree, host::TestingScenarios(), ac);
  double worst = 0;
  bool all = true;
  for (const host::LatencyResult& r : results) {
    std::printf("%-28s %-18s %zu/%-6zu %10.2f %10.2f\n", r.spec.label.c_str(),
                r.spec.ransomware.c_str(), r.detected, r.runs,
                r.mean_latency_s, r.max_latency_s);
    worst = std::max(worst, r.max_latency_s);
    all = all && (r.detected == r.runs);
  }
  std::printf("\nall attacks detected: %s   worst latency: %.2f s "
              "(paper bound: 10 s)\n", all ? "yes" : "NO", worst);

  // Where a command's time goes while an attack is being detected: one
  // WannaCry-vs-3-tenants run through the queue frontend with the metrics
  // registry attached. The registry's phase histograms split end-to-end
  // latency into queue wait vs device time and expose the device-internal
  // GC-stall and NAND-occupancy distributions underneath it.
  bench::PrintHeader("Phase breakdown during detection (WannaCry + 3 tenants)");
  {
    obs::MetricsRegistry metrics;
    host::InterleavedConfig ic;
    ic.seed = 7;
    ic.metrics = &metrics;
    // The shipped tree, not the freshly trained one: this section is about
    // the latency pipeline, and the pretrained tree's thresholds are the
    // ones the rest of the suite validates against.
    host::InterleavedResult ir =
        host::RunInterleavedDetection(core::PretrainedTree(), ic);
    std::printf("alarm: %s  latency %.2f s\n", ir.alarm ? "yes" : "NO",
                ir.alarm ? ToSeconds(ir.detection_latency) : 0.0);
    std::printf("%-22s %10s %10s %10s %10s\n", "phase", "count", "p50_us",
                "p99_us", "max_us");
    for (const char* name :
         {"engine.queue_wait_us", "engine.device_us", "engine.latency_us",
          "ftl.gc_stall_us", "nand.bus_us", "nand.cell_read_us",
          "nand.cell_program_us"}) {
      const obs::LogHistogram& h = metrics.GetHistogram(name);
      if (h.Count() == 0) continue;
      std::printf("%-22s %10llu %10.0f %10.0f %10.0f\n", name,
                  static_cast<unsigned long long>(h.Count()), h.Quantile(0.50),
                  h.Quantile(0.99), h.Max());
    }
  }

  // Rollback timing: fill a device, attack it, roll back, report the
  // modeled firmware time (mapping-table updates only).
  bench::PrintHeader("Instant recovery: rollback timing");
  host::ConsistencyTrialConfig cc;
  cc.seed = 3;
  host::ConsistencyTrialResult r = host::RunConsistencyTrial(tree, cc);
  std::printf("detected: %s, latency %.2f s\n", r.detected ? "yes" : "NO",
              ToSeconds(r.detection_latency));
  std::printf("rollback: %.4f s for a full recovery queue (paper: <1 s)\n",
              ToSeconds(r.rollback_duration));
  std::printf("files recovered intact: %zu/%zu (paper: 0%% data loss)\n",
              r.files_intact, r.files_total);
  return 0;
}
