// GC policy characterization on the refactored FTL.
//
// Part 1 — victim-policy matrix: {greedy, cost-benefit} x delayed-deletion
// {off, on} under the same high-utilization mixed workload on a raw
// PageFtl. Reports the reclamation economics (page copies, retained
// copies, erases, forced backup releases) and the wear spread each policy
// produces. Greedy with defaults is the seed behavior the parity tests pin.
// Under uniform traffic the two policies usually coincide (the utilization
// term dominates cost-benefit's score, and both tie-breaks favor the
// less-worn block); the cost-benefit wear bonus only changes picks near
// utilization ties, so matching rows here are expected, not a wiring bug —
// tests/gc_policy_test.cc pins the divergence on a crafted near-tie.
//
// Part 2 — background vs inline GC: the same sustained rewrite stream
// driven through Ssd + IoEngine with the default (non-zero) NAND latency
// model. With the watermark task armed (default) the firmware scheduler
// reclaims during inter-command gaps and foreground writes never block;
// with the low watermark disabled every reclamation happens inline inside
// a host write, which is exactly the stall time `gc_stall_time` accrues.
//
// Emits BENCH_gc.json next to the human-readable tables so CI can diff
// runs without scraping stdout.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ftl/page_ftl.h"
#include "host/ssd.h"
#include "host/ssd_target.h"
#include "io/io_engine.h"
#include "json_writer.h"
#include "nand/geometry.h"

namespace insider::bench {
namespace {

std::uint64_t Lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s >> 33;
}

nand::Geometry MediumGeometry() {
  nand::Geometry g;
  g.channels = 2;
  g.ways = 2;
  g.blocks_per_chip = 32;
  g.pages_per_block = 16;
  return g;
}

// ---------------------------------------------------------------------------
// Part 1: victim-policy matrix on a raw PageFtl.

struct MatrixRow {
  const char* policy;
  bool delayed;
  ftl::FtlStats stats;
  ftl::PageFtl::WearStats wear;
};

MatrixRow RunPolicyCell(ftl::VictimPolicyKind kind, bool delayed,
                        std::size_t ops) {
  ftl::FtlConfig cfg;
  cfg.geometry = MediumGeometry();
  cfg.latency = nand::LatencyModel::Zero();
  cfg.delayed_deletion = delayed;
  cfg.retention_window = Seconds(2);
  cfg.victim_policy = kind;
  ftl::PageFtl ftl(cfg);

  const Lba n = ftl.ExportedLbas();
  SimTime t = Seconds(1);
  // Fill 90% of the exported range, then hammer it with a write-heavy mix.
  for (Lba lba = 0; lba < n * 9 / 10; ++lba) {
    ftl.WritePage(lba, {lba, {}}, t);
  }
  std::uint64_t seed = 0xC0FFEE;
  for (std::size_t i = 0; i < ops; ++i) {
    t += Milliseconds(1);
    Lba lba = Lcg(seed) % (n * 9 / 10);
    std::uint64_t dice = Lcg(seed) % 10;
    if (dice < 8) {
      ftl.WritePage(lba, {1'000'000 + i, {}}, t);
    } else if (dice == 8) {
      ftl.TrimPage(lba, t);
    } else {
      ftl.ReadPage(lba, t);
    }
  }

  MatrixRow row;
  row.policy = kind == ftl::VictimPolicyKind::kGreedy ? "greedy"
                                                      : "cost_benefit";
  row.delayed = delayed;
  row.stats = ftl.Stats();
  row.wear = ftl.Wear();
  return row;
}

void PolicyMatrix(JsonWriter& json, std::size_t reps) {
  PrintHeader("gc_policies — victim policy x delayed deletion");
  const std::size_t ops = 5000 * reps;
  std::printf("workload: %zu mixed ops (8/1/1 write/trim/read), 90%% util\n",
              ops);
  std::printf("%-13s %-8s %10s %10s %8s %8s %7s %7s %7s\n", "policy",
              "delayed", "copies", "ret_cp", "erases", "forced", "wr_min",
              "wr_max", "wr_avg");

  json.Key("policy_matrix").BeginArray();
  for (ftl::VictimPolicyKind kind :
       {ftl::VictimPolicyKind::kGreedy, ftl::VictimPolicyKind::kCostBenefit}) {
    for (bool delayed : {false, true}) {
      MatrixRow r = RunPolicyCell(kind, delayed, ops);
      std::printf(
          "%-13s %-8s %10llu %10llu %8llu %8llu %7llu %7llu %7.1f\n",
          r.policy, r.delayed ? "on" : "off",
          (unsigned long long)r.stats.gc_page_copies,
          (unsigned long long)r.stats.gc_retained_copies,
          (unsigned long long)r.stats.gc_erases,
          (unsigned long long)r.stats.forced_releases,
          (unsigned long long)r.wear.min_erases,
          (unsigned long long)r.wear.max_erases, r.wear.mean_erases);
      json.BeginObject()
          .Field("policy", r.policy)
          .Field("delayed_deletion", r.delayed)
          .Field("host_writes", r.stats.host_writes)
          .Field("gc_page_copies", r.stats.gc_page_copies)
          .Field("gc_retained_copies", r.stats.gc_retained_copies)
          .Field("gc_erases", r.stats.gc_erases)
          .Field("gc_invocations", r.stats.gc_invocations)
          .Field("forced_releases", r.stats.forced_releases)
          .Field("retained_released", r.stats.retained_released)
          .Field("wear_min", r.wear.min_erases)
          .Field("wear_max", r.wear.max_erases)
          .Field("wear_mean", r.wear.mean_erases)
          .Field("copies_per_write",
                 r.stats.host_writes
                     ? static_cast<double>(r.stats.gc_page_copies) /
                           static_cast<double>(r.stats.host_writes)
                     : 0.0)
          .EndObject();
    }
  }
  json.EndArray();
}

// ---------------------------------------------------------------------------
// Part 2: background (watermark task) vs inline GC through the I/O engine.

struct StallRun {
  const char* mode;
  ftl::FtlStats stats;
  SimTime makespan = 0;
  std::size_t writes = 0;
};

StallRun RunSustainedWrites(bool background, std::size_t rounds) {
  host::SsdConfig cfg;
  cfg.ftl.geometry = MediumGeometry();
  // Default latency model: programs/erases cost real virtual time, so the
  // gaps between 1 ms write arrivals are genuine idle the scheduler can use
  // and inline GC shows up as measurable stall.
  cfg.ftl.delayed_deletion = false;
  cfg.detector_enabled = false;
  if (!background) cfg.ftl.gc_low_watermark_blocks = 0;
  host::Ssd ssd(cfg, core::DecisionTree{});
  host::SsdTarget target(ssd);

  io::EngineConfig ecfg;
  ecfg.queue_count = 1;
  ecfg.queue.sq_depth = 32;
  io::IoEngine engine(target, ecfg);

  const Lba n = ssd.Ftl().ExportedLbas();
  const Lba span = n * 9 / 10;
  std::uint64_t stamp = 0;
  SimTime t = 0;
  auto submit = [&](const IoRequest& req) {
    while (!engine.TrySubmit(0, req, stamp)) {
      engine.Step();
      while (engine.PopCompletion(0)) {
      }
    }
    ++stamp;
  };

  // Warm-up fill so every subsequent write displaces an older version.
  for (Lba lba = 0; lba < span; ++lba) {
    t += Microseconds(100);
    submit({t, lba, 1, IoMode::kWrite});
  }
  engine.Drain();
  while (engine.PopCompletion(0)) {
  }
  ssd.Ftl().ResetStats();
  const SimTime start = engine.Now();

  std::uint64_t seed = 0xD15C;
  std::size_t writes = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (Lba i = 0; i < span; ++i) {
      t += Milliseconds(1);
      submit({t, Lcg(seed) % span, 1, IoMode::kWrite});
      ++writes;
    }
  }
  engine.Drain();
  while (engine.PopCompletion(0)) {
  }

  StallRun run;
  run.mode = background ? "background" : "inline";
  run.stats = ssd.Ftl().Stats();
  run.makespan = engine.Now() - start;
  run.writes = writes;
  return run;
}

void BackgroundVsInline(JsonWriter& json, std::size_t reps) {
  PrintHeader("gc_policies — background (watermark) vs inline GC stall");
  const std::size_t rounds = 2 + reps;
  std::printf("%-12s %12s %10s %10s %10s %12s\n", "mode", "stall_us",
              "fg_invoc", "bg_blocks", "copies", "makespan_ms");

  json.Key("background_vs_inline").BeginArray();
  SimTime stall[2] = {0, 0};
  int idx = 0;
  for (bool background : {false, true}) {
    StallRun r = RunSustainedWrites(background, rounds);
    stall[idx++] = r.stats.gc_stall_time;
    std::printf("%-12s %12lld %10llu %10llu %10llu %12.1f\n", r.mode,
                (long long)r.stats.gc_stall_time,
                (unsigned long long)r.stats.gc_invocations,
                (unsigned long long)r.stats.gc_background_blocks,
                (unsigned long long)r.stats.gc_page_copies,
                ToSeconds(r.makespan) * 1e3);
    json.BeginObject()
        .Field("mode", r.mode)
        .Field("writes", r.writes)
        .Field("gc_stall_us", r.stats.gc_stall_time)
        .Field("gc_invocations", r.stats.gc_invocations)
        .Field("gc_background_blocks", r.stats.gc_background_blocks)
        .Field("gc_page_copies", r.stats.gc_page_copies)
        .Field("makespan_us", r.makespan)
        .Field("stall_per_write_us",
               r.writes ? static_cast<double>(r.stats.gc_stall_time) /
                              static_cast<double>(r.writes)
                        : 0.0)
        .EndObject();
  }
  json.EndArray();

  const double reduction =
      stall[0] > 0
          ? 100.0 * (1.0 - static_cast<double>(stall[1]) /
                               static_cast<double>(stall[0]))
          : 0.0;
  std::printf("foreground write-stall reduction: %.1f%% (inline %lld us -> "
              "background %lld us)\n",
              reduction, (long long)stall[0], (long long)stall[1]);
  json.Field("stall_reduction_percent", reduction);
}

}  // namespace
}  // namespace insider::bench

int main() {
  using insider::bench::JsonWriter;
  const std::size_t reps = insider::bench::RepsFromEnv(4);
  JsonWriter json("BENCH_gc.json");
  json.BeginObject();
  json.Field("bench", "gc_policies").Field("reps", reps);
  insider::bench::PolicyMatrix(json, reps);
  insider::bench::BackgroundVsInline(json, reps);
  json.EndObject();
  std::printf("[bench] wrote %s\n", json.Path().c_str());
  return 0;
}
