// Fig. 1 reproduction: ransomware's overwriting behavior.
//
//  (a) correlation between a ransomware's active period within each
//      1-second slice and the slice's overwriting frequency (OWIO);
//  (b) cumulative overwriting counts for four ransomware families vs four
//      normal applications.
//
// Expected shape (paper): strong positive correlation in (a); in (b) the
// WannaCry/Mole curves climb steeply, Jaff/CryptoShield shallowly, and of
// the normal apps only data wiping reaches ransomware-like counts.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/detector.h"
#include "host/experiment.h"

namespace {

using namespace insider;

struct Series {
  std::string name;
  std::vector<double> owio_per_slice;
  std::vector<double> active_us_per_slice;  // ransomware ground truth
};

Series RunOne(const char* ransomware, wl::AppKind app, std::uint64_t seed) {
  host::ScenarioConfig sc = bench::BenchScenario();
  host::ScenarioSpec spec{app, ransomware ? ransomware : "", ""};
  host::BuiltScenario built = host::BuildScenario(spec, sc, seed);

  core::DetectorConfig dc;
  core::Detector extractor(dc, core::DecisionTree{});

  // Ransomware busy-time per slice: approximate each of its requests as
  // busy until the next one or 1 ms, capped at the slice.
  std::map<core::SliceIndex, double> active;
  SimTime last = 0;
  for (std::size_t i = 0; i < built.merged.size(); ++i) {
    const wl::TaggedRequest& t = built.merged[i];
    extractor.OnRequest(t.request);
    last = t.request.time;
    if (t.source == 1) {
      active[t.request.time / dc.slice_length] += 1.0;
    }
  }
  extractor.AdvanceTo(last + dc.slice_length);

  Series s;
  s.name = ransomware ? ransomware : wl::AppKindName(app);
  for (const core::SliceRecord& rec : extractor.History()) {
    s.owio_per_slice.push_back(rec.features.owio());
    auto it = active.find(rec.slice);
    s.active_us_per_slice.push_back(it == active.end() ? 0.0 : it->second);
  }
  return s;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 1(a): ransomware active period vs overwriting frequency");
  std::printf("%-16s %-22s %s\n", "family", "corr(OWIO, activity)",
              "mean OWIO while active");
  for (const char* fam : {"WannaCry", "Mole", "Jaff", "CryptoShield"}) {
    Series s = RunOne(fam, wl::AppKind::kNone, 11);
    double corr = PearsonCorrelation(s.owio_per_slice, s.active_us_per_slice);
    RunningStats active_owio;
    for (std::size_t i = 0; i < s.owio_per_slice.size(); ++i) {
      if (s.active_us_per_slice[i] > 0) active_owio.Add(s.owio_per_slice[i]);
    }
    // A family with no active slices has no mean; Mean() is NaN then, which
    // printf renders as "nan" — never a fabricated 0 blocks/s.
    std::printf("%-16s %-22.3f %.0f blocks/s\n", fam, corr,
                active_owio.Mean());
  }

  bench::PrintHeader(
      "Fig. 1(b): cumulative overwriting, ransomware vs normal apps");
  struct Row {
    std::string name;
    std::vector<double> cumulative;
  };
  std::vector<Row> rows;
  for (const char* fam : {"WannaCry", "Mole", "Jaff", "CryptoShield"}) {
    Series s = RunOne(fam, wl::AppKind::kNone, 21);
    Row r{std::string("ransom:") + fam, {}};
    double total = 0;
    for (double v : s.owio_per_slice) {
      total += v;
      r.cumulative.push_back(total);
    }
    rows.push_back(std::move(r));
  }
  for (wl::AppKind app :
       {wl::AppKind::kDataWiping, wl::AppKind::kP2pDownload,
        wl::AppKind::kCloudStorage, wl::AppKind::kCompression}) {
    Series s = RunOne(nullptr, app, 21);
    Row r{std::string("app:") + wl::AppKindName(app), {}};
    double total = 0;
    for (double v : s.owio_per_slice) {
      total += v;
      r.cumulative.push_back(total);
    }
    rows.push_back(std::move(r));
  }

  std::printf("%-22s", "t(s):");
  for (int t = 5; t <= 40; t += 5) std::printf("%12d", t);
  std::printf("\n");
  for (const Row& r : rows) {
    std::printf("%-22s", r.name.c_str());
    for (int t = 5; t <= 40; t += 5) {
      std::size_t idx = static_cast<std::size_t>(t);
      double v = r.cumulative.empty()
                     ? 0
                     : r.cumulative[std::min(idx, r.cumulative.size() - 1)];
      std::printf("%12.0f", v);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: WannaCry/Mole steep, Jaff/CryptoShield "
              "shallow;\nonly DataWiping among normal apps reaches "
              "ransomware-level counts.\n");
  return 0;
}
