// Multi-queue frontend characterization.
//
// Part 1 — throughput/latency sweep: synthetic 50/50 read-write streams
// saturate the device through {1, 4, 8} queue pairs at depth {1, 32};
// reports IOPS and p50/p99 submit-to-complete command latency. Depth 1
// serializes each host (one outstanding command), so IOPS is latency-bound;
// depth 32 keeps the channel/way parallelism of the NAND array busy.
//
// Part 2 — detection under interleaving: a ransomware stream multiplexed
// with N benign tenant streams through separate queue pairs; the in-SSD
// detector must still raise the alarm (score >= threshold) even though the
// header stream it sees is the arbitrated interleaving of all tenants.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/pretrained.h"
#include "host/experiment.h"
#include "host/ssd.h"
#include "host/ssd_target.h"
#include "io/io_engine.h"
#include "json_writer.h"
#include "obs/metrics.h"
#include "workload/multi_tenant.h"

namespace insider::bench {
namespace {

SimTime Percentile(std::vector<SimTime> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

host::SsdConfig SweepDevice() {
  host::SsdConfig c;
  c.ftl.geometry.channels = 4;
  c.ftl.geometry.ways = 4;
  c.ftl.geometry.blocks_per_chip = 128;
  c.ftl.geometry.pages_per_block = 64;
  c.detector_enabled = false;  // isolate frontend + media behavior
  return c;
}

void ThroughputSweep(JsonWriter& json) {
  PrintHeader("mqueue_throughput — IOPS and latency vs queues x depth");
  std::printf("%7s %6s %12s %12s %12s %9s %9s %9s %9s %8s %8s\n", "queues",
              "depth", "IOPS", "p50_us", "p99_us", "qw_p50", "qw_p99",
              "dev_p50", "dev_p99", "stalls", "max_inf");

  const std::size_t kCommandsPerQueue = RepsFromEnv(4) * 1000;
  json.Key("throughput_sweep").BeginArray();
  for (std::size_t queues : {1u, 4u, 8u}) {
    for (std::size_t depth : {1u, 32u}) {
      host::Ssd ssd(SweepDevice(), core::PretrainedTree());
      host::SsdTarget target(ssd);
      const Lba exported = ssd.Ftl().ExportedLbas();
      const Lba region = exported / static_cast<Lba>(queues);

      // Each queue: a host hammering its own region, arrivals far faster
      // than the media (10 us apart) so queue depth is the limiter.
      Rng rng(0xBE5C'0000 + queues * 100 + depth);
      std::vector<wl::TenantSpec> tenants;
      for (std::size_t q = 0; q < queues; ++q) {
        wl::TenantSpec t;
        t.name = "host" + std::to_string(q);
        t.stamp_base = q * 1'000'000ull;
        for (std::size_t i = 0; i < kCommandsPerQueue; ++i) {
          IoRequest req;
          req.time = static_cast<SimTime>(i) * 10;
          req.lba = region * q + rng.Below(region > 8 ? region - 8 : 1);
          req.length = 1;
          req.mode = rng.Chance(0.5) ? IoMode::kRead : IoMode::kWrite;
          t.requests.push_back(req);
        }
        tenants.push_back(std::move(t));
      }

      io::EngineConfig ecfg;
      ecfg.queue_count = queues;
      ecfg.queue.sq_depth = depth;
      io::IoEngine engine(target, ecfg);
      // Phase breakdown via the metrics registry: the engine splits each
      // command's life into queue-wait and device time (engine.queue_wait_us
      // / engine.device_us). Recording never touches virtual time, so the
      // IOPS column is identical with or without the registry attached.
      obs::MetricsRegistry metrics;
      engine.AttachObs(nullptr, &metrics);
      wl::MultiTenantDriver driver(std::move(tenants));
      wl::MultiTenantReport report = driver.Run(engine);

      std::vector<SimTime> lat;
      std::uint64_t stalls = 0;
      for (const wl::TenantResult& t : report.tenants) {
        lat.insert(lat.end(), t.latencies.begin(), t.latencies.end());
        stalls += t.stall_events;
      }
      const SimTime p50 = Percentile(lat, 0.50);
      const SimTime p99 = Percentile(lat, 0.99);
      const obs::LogHistogram& qw = metrics.GetHistogram("engine.queue_wait_us");
      const obs::LogHistogram& dev = metrics.GetHistogram("engine.device_us");
      std::printf("%7zu %6zu %12.0f %12lld %12lld %9.0f %9.0f %9.0f %9.0f "
                  "%8llu %8llu\n",
                  queues, depth, report.TotalIops(),
                  static_cast<long long>(p50), static_cast<long long>(p99),
                  qw.Quantile(0.50), qw.Quantile(0.99), dev.Quantile(0.50),
                  dev.Quantile(0.99), static_cast<unsigned long long>(stalls),
                  static_cast<unsigned long long>(
                      engine.Stats().max_in_flight));
      json.BeginObject()
          .Field("queues", queues)
          .Field("depth", depth)
          .Field("commands_per_queue", kCommandsPerQueue)
          .Field("iops", report.TotalIops())
          .Field("p50_us", p50)
          .Field("p99_us", p99)
          .Field("queue_wait_p50_us", qw.Quantile(0.50))
          .Field("queue_wait_p99_us", qw.Quantile(0.99))
          .Field("device_p50_us", dev.Quantile(0.50))
          .Field("device_p99_us", dev.Quantile(0.99))
          .Field("stalls", stalls)
          .Field("max_in_flight", engine.Stats().max_in_flight)
          .EndObject();
    }
  }
  json.EndArray();
}

void InterleavedDetection(JsonWriter& json) {
  PrintHeader("detection under multi-tenant interleaving (queue frontend)");
  core::DecisionTree tree = core::PretrainedTree();

  json.Key("interleaved_detection").BeginArray();
  for (const char* family : {"WannaCry", "Mole", "InHouse.inplace"}) {
    host::InterleavedConfig cfg;
    cfg.benign_tenants = 3;
    cfg.ransomware = family;
    cfg.duration = Seconds(40);
    cfg.ransom_start = Seconds(12);
    cfg.seed = 7;
    host::InterleavedResult r = host::RunInterleavedDetection(tree, cfg);
    std::printf(
        "%-16s + %zu benign tenants: score %d/%zu %s  latency %.1f s\n",
        family, cfg.benign_tenants, r.max_score, cfg.detector.window_slices,
        r.alarm ? "ALARM" : "missed",
        r.alarm ? ToSeconds(r.detection_latency) : 0.0);
    json.BeginObject()
        .Field("ransomware", family)
        .Field("benign_tenants", cfg.benign_tenants)
        .Field("max_score", r.max_score)
        .Field("alarm", r.alarm)
        .Field("detection_latency_s",
               r.alarm ? ToSeconds(r.detection_latency) : 0.0)
        .EndObject();
  }

  host::InterleavedConfig benign;
  benign.benign_tenants = 4;
  benign.ransomware.clear();
  benign.duration = Seconds(40);
  benign.seed = 7;
  host::InterleavedResult r = host::RunInterleavedDetection(tree, benign);
  std::printf("benign control  (%zu tenants):        score %d/%zu %s\n",
              benign.benign_tenants, r.max_score,
              benign.detector.window_slices,
              r.alarm ? "FALSE ALARM" : "quiet");
  json.BeginObject()
      .Field("ransomware", "")
      .Field("benign_tenants", benign.benign_tenants)
      .Field("max_score", r.max_score)
      .Field("alarm", r.alarm)
      .EndObject();
  json.EndArray();
}

}  // namespace
}  // namespace insider::bench

int main() {
  using insider::bench::JsonWriter;
  JsonWriter json("BENCH_mqueue.json");
  json.BeginObject();
  json.Field("bench", "mqueue_throughput");
  insider::bench::ThroughputSweep(json);
  insider::bench::InterleavedDetection(json);
  json.EndObject();
  std::printf("[bench] wrote %s\n", json.Path().c_str());
  return 0;
}
