// Multi-queue frontend characterization.
//
// Part 1 — throughput/latency sweep: synthetic 50/50 read-write streams
// saturate the device through {1, 4, 8} queue pairs at depth {1, 32};
// reports IOPS and p50/p99 submit-to-complete command latency. Depth 1
// serializes each host (one outstanding command), so IOPS is latency-bound;
// depth 32 keeps the channel/way parallelism of the NAND array busy.
//
// Part 2 — detection under interleaving: a ransomware stream multiplexed
// with N benign tenant streams through separate queue pairs; the in-SSD
// detector must still raise the alarm (score >= threshold) even though the
// header stream it sees is the arbitrated interleaving of all tenants.
//
// Part 3 — simulation-engine throughput (ISSUE 7): wall-clock events/sec of
// the engine itself, swept over geometry (seed vs the paper's 512 GB
// PaperScale shape) x shard_threads, with the projected time to simulate a
// 10M-command trace; plus the fleet-parallel dimension (N independent
// devices across io::ParallelFor threads) where the speedup acceptance
// lives — each instance stays bit-deterministic while the fleet scales.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/pretrained.h"
#include "host/experiment.h"
#include "host/ssd.h"
#include "host/ssd_target.h"
#include "io/io_engine.h"
#include "io/shard_runtime.h"
#include "json_writer.h"
#include "obs/metrics.h"
#include "workload/multi_tenant.h"

namespace insider::bench {
namespace {

SimTime Percentile(std::vector<SimTime> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

host::SsdConfig SweepDevice() {
  host::SsdConfig c;
  c.ftl.geometry.channels = 4;
  c.ftl.geometry.ways = 4;
  c.ftl.geometry.blocks_per_chip = 128;
  c.ftl.geometry.pages_per_block = 64;
  c.detector_enabled = false;  // isolate frontend + media behavior
  return c;
}

void ThroughputSweep(JsonWriter& json) {
  PrintHeader("mqueue_throughput — IOPS and latency vs queues x depth");
  std::printf("%7s %6s %12s %12s %12s %9s %9s %9s %9s %8s %8s\n", "queues",
              "depth", "IOPS", "p50_us", "p99_us", "qw_p50", "qw_p99",
              "dev_p50", "dev_p99", "stalls", "max_inf");

  const std::size_t kCommandsPerQueue = RepsFromEnv(4) * 1000;
  json.Key("throughput_sweep").BeginArray();
  for (std::size_t queues : {1u, 4u, 8u}) {
    for (std::size_t depth : {1u, 32u}) {
      host::Ssd ssd(SweepDevice(), core::PretrainedTree());
      host::SsdTarget target(ssd);
      const Lba exported = ssd.Ftl().ExportedLbas();
      const Lba region = exported / static_cast<Lba>(queues);

      // Each queue: a host hammering its own region, arrivals far faster
      // than the media (10 us apart) so queue depth is the limiter.
      Rng rng(0xBE5C'0000 + queues * 100 + depth);
      std::vector<wl::TenantSpec> tenants;
      for (std::size_t q = 0; q < queues; ++q) {
        wl::TenantSpec t;
        t.name = "host" + std::to_string(q);
        t.stamp_base = q * 1'000'000ull;
        for (std::size_t i = 0; i < kCommandsPerQueue; ++i) {
          IoRequest req;
          req.time = CostOf(i, 10);
          req.lba = region * q + rng.Below(region > 8 ? region - 8 : 1);
          req.length = 1;
          req.mode = rng.Chance(0.5) ? IoMode::kRead : IoMode::kWrite;
          t.requests.push_back(req);
        }
        tenants.push_back(std::move(t));
      }

      io::EngineConfig ecfg;
      ecfg.queue_count = queues;
      ecfg.queue.sq_depth = depth;
      io::IoEngine engine(target, ecfg);
      // Phase breakdown via the metrics registry: the engine splits each
      // command's life into queue-wait and device time (engine.queue_wait_us
      // / engine.device_us). Recording never touches virtual time, so the
      // IOPS column is identical with or without the registry attached.
      obs::MetricsRegistry metrics;
      engine.AttachObs(nullptr, &metrics);
      // Uncapped samples: the percentile columns below must see every
      // command even at high INSIDER_BENCH_REPS, not a ring-capped tail.
      wl::MultiTenantOptions mt_opts;
      mt_opts.sample_limit = 0;
      wl::MultiTenantDriver driver(std::move(tenants), mt_opts);
      wl::MultiTenantReport report = driver.Run(engine);

      std::vector<SimTime> lat;
      std::uint64_t stalls = 0;
      for (const wl::TenantResult& t : report.tenants) {
        lat.insert(lat.end(), t.latencies.begin(), t.latencies.end());
        stalls += t.stall_events;
      }
      const SimTime p50 = Percentile(lat, 0.50);
      const SimTime p99 = Percentile(lat, 0.99);
      const obs::LogHistogram& qw = metrics.GetHistogram("engine.queue_wait_us");
      const obs::LogHistogram& dev = metrics.GetHistogram("engine.device_us");
      std::printf("%7zu %6zu %12.0f %12lld %12lld %9.0f %9.0f %9.0f %9.0f "
                  "%8llu %8llu\n",
                  queues, depth, report.TotalIops(),
                  static_cast<long long>(RawMicros(p50)),
                  static_cast<long long>(RawMicros(p99)),
                  qw.Quantile(0.50), qw.Quantile(0.99), dev.Quantile(0.50),
                  dev.Quantile(0.99), static_cast<unsigned long long>(stalls),
                  static_cast<unsigned long long>(
                      engine.Stats().max_in_flight));
      json.BeginObject()
          .Field("queues", queues)
          .Field("depth", depth)
          .Field("commands_per_queue", kCommandsPerQueue)
          .Field("iops", report.TotalIops())
          .Field("p50_us", p50)
          .Field("p99_us", p99)
          .Field("queue_wait_p50_us", qw.Quantile(0.50))
          .Field("queue_wait_p99_us", qw.Quantile(0.99))
          .Field("device_p50_us", dev.Quantile(0.50))
          .Field("device_p99_us", dev.Quantile(0.99))
          .Field("stalls", stalls)
          .Field("max_in_flight", engine.Stats().max_in_flight)
          .EndObject();
    }
  }
  json.EndArray();
}

void InterleavedDetection(JsonWriter& json) {
  PrintHeader("detection under multi-tenant interleaving (queue frontend)");
  core::DecisionTree tree = core::PretrainedTree();

  json.Key("interleaved_detection").BeginArray();
  for (const char* family : {"WannaCry", "Mole", "InHouse.inplace"}) {
    host::InterleavedConfig cfg;
    cfg.benign_tenants = 3;
    cfg.ransomware = family;
    cfg.duration = Seconds(40);
    cfg.ransom_start = Seconds(12);
    cfg.seed = 7;
    host::InterleavedResult r = host::RunInterleavedDetection(tree, cfg);
    std::printf(
        "%-16s + %zu benign tenants: score %d/%zu %s  latency %.1f s\n",
        family, cfg.benign_tenants, r.max_score, cfg.detector.window_slices,
        r.alarm ? "ALARM" : "missed",
        r.alarm ? ToSeconds(r.detection_latency) : 0.0);
    json.BeginObject()
        .Field("ransomware", family)
        .Field("benign_tenants", cfg.benign_tenants)
        .Field("max_score", r.max_score)
        .Field("alarm", r.alarm)
        .Field("detection_latency_s",
               r.alarm ? ToSeconds(r.detection_latency) : 0.0)
        .EndObject();
  }

  host::InterleavedConfig benign;
  benign.benign_tenants = 4;
  benign.ransomware.clear();
  benign.duration = Seconds(40);
  benign.seed = 7;
  host::InterleavedResult r = host::RunInterleavedDetection(tree, benign);
  std::printf("benign control  (%zu tenants):        score %d/%zu %s\n",
              benign.benign_tenants, r.max_score,
              benign.detector.window_slices,
              r.alarm ? "FALSE ALARM" : "quiet");
  json.BeginObject()
      .Field("ransomware", "")
      .Field("benign_tenants", benign.benign_tenants)
      .Field("max_score", r.max_score)
      .Field("alarm", r.alarm)
      .EndObject();
  json.EndArray();
}

std::vector<wl::TenantSpec> EngineStreams(std::size_t queues,
                                          std::size_t commands_per_queue,
                                          Lba exported, std::uint64_t seed) {
  const Lba region = exported / static_cast<Lba>(queues);
  Rng rng(seed);
  std::vector<wl::TenantSpec> tenants;
  for (std::size_t q = 0; q < queues; ++q) {
    wl::TenantSpec t;
    t.name = "host" + std::to_string(q);
    t.stamp_base = q * 1'000'000ull;
    for (std::size_t i = 0; i < commands_per_queue; ++i) {
      IoRequest req;
      req.time = CostOf(i, 10);
      req.lba = region * q + rng.Below(64);
      req.length = 1;
      req.mode = rng.Chance(0.5) ? IoMode::kRead : IoMode::kWrite;
      t.requests.push_back(req);
    }
    tenants.push_back(std::move(t));
  }
  return tenants;
}

struct EngineRun {
  double wall_s = 0;
  std::uint64_t dispatched = 0;
  std::vector<std::uint64_t> lane_ops;  ///< deferred programs per channel
};

EngineRun RunEngineOnce(const nand::Geometry& geo, std::size_t shard_threads,
                        std::size_t commands_per_queue, std::uint64_t seed) {
  constexpr std::size_t kQueues = 8;
  host::SsdConfig scfg;
  scfg.ftl.geometry = geo;
  scfg.detector_enabled = false;
  host::Ssd ssd(scfg, core::PretrainedTree());
  host::SsdTarget target(ssd);

  io::EngineConfig ecfg;
  ecfg.queue_count = kQueues;
  ecfg.queue.sq_depth = 32;
  ecfg.shard_threads = shard_threads;
  io::IoEngine engine(target, ecfg);
  wl::MultiTenantDriver driver(EngineStreams(
      kQueues, commands_per_queue, ssd.Ftl().ExportedLbas(), seed));

  EngineRun run;
  const double begin = WallSeconds();
  driver.Run(engine);
  engine.PublishShardMetrics();  // drains the lanes before the clock stops
  run.wall_s = WallSeconds() - begin;
  run.dispatched = engine.Stats().dispatched;
  if (const io::ShardRuntime* shards = engine.Shards()) {
    for (const io::ShardLaneStats& lane : shards->LaneStats()) {
      run.lane_ops.push_back(lane.ops);
    }
  }
  return run;
}

void EngineThroughputSweep(JsonWriter& json) {
  PrintHeader("simulation-engine throughput — events/sec vs geometry x shards");
  std::printf("%12s %7s %12s %12s %14s\n", "geometry", "shards", "commands",
              "events/s", "10M-cmd (s)");

  // INSIDER_BENCH_REPS=1 keeps CI smokes to 80k commands; the default
  // measures 320k and the projection column scales to the 10M-command trace
  // the full reproduction replays.
  const std::size_t kCommandsPerQueue = RepsFromEnv(4) * 10'000;
  struct GeoCase {
    const char* name;
    nand::Geometry geo;
  };
  const GeoCase kGeos[] = {
      {"seed", nand::Geometry::Seed()},
      {"paper-512g", nand::Geometry::PaperScale()},
  };
  json.Key("engine_throughput").BeginArray();
  for (const GeoCase& gc : kGeos) {
    for (std::size_t shards : {0u, 1u, 2u, 4u, 8u}) {
      EngineRun run = RunEngineOnce(gc.geo, shards, kCommandsPerQueue,
                                    0xE7E'0000 + shards);
      const double eps = run.wall_s > 0
                             ? static_cast<double>(run.dispatched) / run.wall_s
                             : 0.0;
      const double to_10m = eps > 0 ? 1e7 / eps : 0.0;
      std::printf("%12s %7zu %12llu %12.0f %14.1f\n", gc.name, shards,
                  static_cast<unsigned long long>(run.dispatched), eps,
                  to_10m);
      json.BeginObject()
          .Field("geometry", gc.name)
          .Field("capacity_gib",
                 static_cast<double>(gc.geo.CapacityBytes()) /
                     (1024.0 * 1024.0 * 1024.0))
          .Field("shard_threads", shards)
          .Field("commands", run.dispatched)
          .Field("wall_s", run.wall_s)
          .Field("events_per_sec", eps)
          .Field("time_to_simulate_10m_cmds_s", to_10m);
      json.Key("lane_deferred_ops").BeginArray();
      for (std::uint64_t ops : run.lane_ops) json.Value(ops);
      json.EndArray();
      json.EndObject();
    }
  }
  json.EndArray();
}

void FleetParallelSweep(JsonWriter& json) {
  PrintHeader("fleet-parallel scaling — 8 independent devices, 8x8 geometry");
  std::printf("%8s %10s %10s %9s %12s\n", "threads", "instances", "wall_s",
              "speedup", "events/s");

  // Eight independent simulations (distinct seeds, same 8-channel x 8-way
  // geometry) spread across a thread pool. Each instance is the serial
  // deterministic engine; the fleet is where wall-clock scaling comes from —
  // this is how the detection-accuracy sweeps replay many traces at once.
  nand::Geometry geo;
  geo.channels = 8;
  geo.ways = 8;
  geo.blocks_per_chip = 256;
  geo.pages_per_block = 64;
  constexpr std::size_t kInstances = 8;
  const std::size_t kCommandsPerQueue = RepsFromEnv(4) * 2'500;

  double baseline_s = 0;
  json.Key("fleet_parallel").BeginArray();
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double begin = WallSeconds();
    io::ParallelFor(kInstances, threads, [&](std::size_t i) {
      RunEngineOnce(geo, 0, kCommandsPerQueue, 0xF1EE7'00 + i);
    });
    const double wall_s = WallSeconds() - begin;
    if (threads == 1) baseline_s = wall_s;
    const double speedup = wall_s > 0 ? baseline_s / wall_s : 0.0;
    const double total_cmds =
        static_cast<double>(kInstances * 8 * kCommandsPerQueue);
    std::printf("%8zu %10zu %10.2f %9.2f %12.0f\n", threads, kInstances,
                wall_s, speedup, wall_s > 0 ? total_cmds / wall_s : 0.0);
    json.BeginObject()
        .Field("threads", threads)
        .Field("hardware_threads",
               static_cast<std::uint64_t>(io::HardwareThreads()))
        .Field("instances", kInstances)
        .Field("commands_per_instance", 8 * kCommandsPerQueue)
        .Field("wall_s", wall_s)
        .Field("speedup_vs_serial", speedup)
        .Field("events_per_sec", wall_s > 0 ? total_cmds / wall_s : 0.0)
        .EndObject();
  }
  json.EndArray();
}

}  // namespace
}  // namespace insider::bench

int main() {
  using insider::bench::JsonWriter;
  JsonWriter json("BENCH_mqueue.json");
  json.BeginObject();
  json.Field("bench", "mqueue_throughput");
  insider::bench::ThroughputSweep(json);
  insider::bench::InterleavedDetection(json);
  insider::bench::EngineThroughputSweep(json);
  insider::bench::FleetParallelSweep(json);
  json.EndObject();
  std::printf("[bench] wrote %s\n", json.Path().c_str());
  return 0;
}
