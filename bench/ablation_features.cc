// Ablation: how much does each of the six features matter?
//
// Trains ID3 trees on (a) all six features, (b) each feature alone, and
// (c) all-but-one, and reports sample-level accuracy on held-out testing
// scenarios. Shape to expect: OWIO/OWST/PWIO carry most of the signal;
// AVGWIO is what separates wiping/DB; no single feature suffices.
#include <cstdio>

#include "bench_util.h"
#include "core/id3.h"
#include "host/train.h"

namespace {

using namespace insider;

/// Zero out all features except those in `keep` so ID3 can't split on them.
std::vector<core::Sample> Mask(const std::vector<core::Sample>& samples,
                               std::uint32_t keep_mask) {
  std::vector<core::Sample> out = samples;
  for (core::Sample& s : out) {
    for (std::size_t f = 0; f < core::kFeatureCount; ++f) {
      if (!(keep_mask & (1u << f))) s.features.values[f] = 0.0;
    }
  }
  return out;
}

double EvalMask(const std::vector<core::Sample>& train,
                const std::vector<core::Sample>& test,
                std::uint32_t keep_mask) {
  std::vector<core::Sample> masked_train = Mask(train, keep_mask);
  std::vector<core::Sample> masked_test = Mask(test, keep_mask);
  core::DecisionTree tree = core::TrainId3(masked_train);
  return core::Accuracy(tree, masked_test);
}

}  // namespace

int main() {
  host::TrainConfig tc;
  tc.scenario = bench::BenchScenario();
  tc.seeds_per_scenario = 2;
  std::fprintf(stderr, "[bench] collecting train/test slice samples...\n");
  std::vector<core::Sample> train =
      host::CollectSamples(host::TrainingScenarios(), tc);
  host::TrainConfig test_tc = tc;
  test_tc.base_seed = 555;
  test_tc.seeds_per_scenario = 1;
  std::vector<core::Sample> test =
      host::CollectSamples(host::TestingScenarios(), test_tc);
  std::size_t pos = 0;
  for (const core::Sample& s : test) pos += s.ransomware;
  std::printf("train slices: %zu, test slices: %zu (%zu positive)\n\n",
              train.size(), test.size(), pos);

  const std::uint32_t all = (1u << core::kFeatureCount) - 1;
  bench::PrintHeader("Ablation: per-slice accuracy by feature subset");
  std::printf("%-24s %10s\n", "feature subset", "accuracy");
  std::printf("%-24s %9.2f%%\n", "ALL SIX", 100.0 * EvalMask(train, test, all));
  for (std::size_t f = 0; f < core::kFeatureCount; ++f) {
    std::printf("only %-19s %9.2f%%\n",
                core::FeatureName(static_cast<core::FeatureId>(f)),
                100.0 * EvalMask(train, test, 1u << f));
  }
  for (std::size_t f = 0; f < core::kFeatureCount; ++f) {
    std::printf("all but %-16s %9.2f%%\n",
                core::FeatureName(static_cast<core::FeatureId>(f)),
                100.0 * EvalMask(train, test, all & ~(1u << f)));
  }
  std::printf("\nExpected shape: the full set wins; OWIO alone is decent "
              "but is fooled\nby wiping (OWST/AVGWIO fix that); dropping "
              "PWIO hurts slow ransomware.\n");
  return 0;
}
