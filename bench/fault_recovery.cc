// Device-fault resilience characterization.
//
// Part 1 — OOB rebuild cost vs fill level: how long the power-loss mapping
// reconstruction (PageFtl::RebuildFromNand) takes as a function of how much
// of the device holds data. The scan is linear in programmed pages, so this
// is the firmware's worst-case boot-after-crash latency curve.
//
// Parts 1b/1c — the O(Δ) answer to part 1: with checkpointing + the mapping
// journal enabled, rebuild cost is constant validation reads plus the
// journal tail plus the un-journaled delta, independent of fill. 1b sweeps
// fill at a fixed tail (the fast path stays flat while the full scan grows);
// 1c sweeps the checkpoint interval at fixed fill (cost tracks Δ, not the
// device). Both run on Seed() and PaperScale() geometries.
//
// Part 2 — fault absorption under sustained load: a write-heavy mix on
// media with realistic grown-defect rates (2e-4 program fails, 1e-4 erase
// fails). Reports how many faults the FTL re-drove / how many blocks it
// retired, with the full invariant check as the pass criterion.
//
// Part 3 — detection robustness: the multi-tenant detection scenario of
// mqueue_throughput on ideal vs faulty media; the paper's scores must not
// move (the detector sees headers, the fault handling stays below it).
//
// Part 4 — the recovery promise through a power cut: benign fill, attack,
// power loss mid-attack, reboot, rollback; counts how many victim LBAs read
// back their pre-attack payload (the paper's claim: all of them).
//
// Emits BENCH_fault.json. INSIDER_BENCH_REPS scales workload sizes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/pretrained.h"
#include "ftl/page_ftl.h"
#include "host/experiment.h"
#include "host/power_loss.h"
#include "host/ssd.h"
#include "json_writer.h"
#include "nand/geometry.h"

namespace insider::bench {
namespace {

std::uint64_t Lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s >> 33;
}

nand::Geometry BenchGeometry() {
  nand::Geometry g;  // 4x4 chips, 32k pages = 128 MB simulated
  g.channels = 4;
  g.ways = 4;
  g.blocks_per_chip = 64;
  g.pages_per_block = 32;
  return g;
}

// ---------------------------------------------------------------------------
// Part 1: rebuild scan time vs fill level.

void RebuildVsFill(JsonWriter& json) {
  PrintHeader("fault_recovery — OOB rebuild cost vs fill level");
  std::printf("%-8s %12s %12s %10s %12s\n", "fill", "scanned", "mappings",
              "backups", "rebuild_ms");

  json.Key("rebuild_vs_fill").BeginArray();
  for (double fill : {0.25, 0.5, 0.75, 0.9}) {
    ftl::FtlConfig cfg;
    cfg.geometry = BenchGeometry();  // default (non-zero) latency model
    ftl::PageFtl ftl(cfg);
    const Lba n = static_cast<Lba>(
        static_cast<double>(ftl.ExportedLbas()) * fill);
    SimTime t = Seconds(1);
    for (Lba lba = 0; lba < n; ++lba) {
      ftl.WritePage(lba, {lba, {}}, t);
      t += Microseconds(20);
    }
    // A fresh overwrite tail so the scan also rebuilds recovery-queue
    // entries, not just clean mappings.
    SimTime crash = t + Seconds(1);
    for (Lba lba = 0; lba < n / 10; ++lba) {
      ftl.WritePage(lba, {1'000'000 + lba, {}}, crash - Milliseconds(500));
    }

    ftl::PageFtl::RebuildReport r = ftl.RebuildFromNand(crash);
    double ms = ToSeconds(r.duration) * 1e3;
    std::printf("%-8.2f %12zu %12zu %10zu %12.2f\n", fill, r.pages_scanned,
                r.mappings_restored, r.backups_restored, ms);
    json.BeginObject()
        .Field("fill", fill)
        .Field("pages_scanned", static_cast<std::uint64_t>(r.pages_scanned))
        .Field("mappings_restored",
               static_cast<std::uint64_t>(r.mappings_restored))
        .Field("backups_restored",
               static_cast<std::uint64_t>(r.backups_restored))
        .Field("rebuild_ms", ms)
        .EndObject();
  }
  json.EndArray();
}

// ---------------------------------------------------------------------------
// Parts 1b/1c: the O(Δ) checkpointed fast path against the full scan
// (ISSUE 8), on the seed and paper-scale geometries.

struct RecoveryGeometry {
  const char* name;
  nand::Geometry geometry;
  double exported_fraction;        ///< bounds the paper-scale working set
  std::uint32_t checkpoint_blocks; ///< per buffer; sized for the snapshot
  std::uint32_t journal_blocks;    ///< per region; bounds the crash tail
  Lba fixed_tail;                  ///< post-checkpoint writes, fill sweep
  Lba tail_per_interval_second;    ///< host write rate, interval sweep
};

std::vector<RecoveryGeometry> RecoveryGeometries() {
  // Seed(): the 16 MiB default array every tier-1 suite runs on. The
  // snapshot at 90% fill packs ~2.6 MB, so the checkpoint buffers get 16
  // blocks (4 MB) instead of the toy default.
  RecoveryGeometry seed{"Seed", nand::Geometry::Seed(), 0.9, 16, 8, 4096,
                        2500};
  // PaperScale(): the 512 GiB paper device. Filling 134M pages is not a
  // bench-able workload, so the exported space is bounded to ~400k LBAs and
  // "fill" is relative to that working set — the full scan is linear in
  // *programmed* pages either way, which is the axis under test.
  RecoveryGeometry paper{"PaperScale", nand::Geometry::PaperScale(), 0.003, 4,
                         2, 16384, 10000};
  return {seed, paper};
}

ftl::FtlConfig RecoveryConfig(const RecoveryGeometry& g, bool checkpointed) {
  ftl::FtlConfig cfg;
  cfg.geometry = g.geometry;  // default (non-zero) latency model
  cfg.exported_fraction = g.exported_fraction;
  cfg.checkpoint.enabled = checkpointed;
  cfg.checkpoint.checkpoint_blocks_per_buffer = g.checkpoint_blocks;
  cfg.checkpoint.journal_blocks_per_region = g.journal_blocks;
  return cfg;
}

/// Fill `fill` of the exported space, pin the checkpoint horizon (when
/// enabled), write a `tail` of fresh overwrites past it, then crash-rebuild.
/// The tail's last sub-page record batch dies with DRAM — exactly the state
/// a real power cut leaves — so the rebuild exercises checkpoint restore,
/// journal replay, and the delta OOB scan together.
ftl::PageFtl::RebuildReport FillAndRebuild(const RecoveryGeometry& g,
                                           bool checkpointed, double fill,
                                           Lba tail) {
  ftl::PageFtl ftl(RecoveryConfig(g, checkpointed));
  const Lba n = static_cast<Lba>(
      static_cast<double>(ftl.ExportedLbas()) * fill);
  SimTime t = Seconds(1);
  for (Lba lba = 0; lba < n; ++lba) {
    ftl.WritePage(lba, {lba, {}}, t);
    t += Microseconds(20);
  }
  if (checkpointed) t = std::max(t, ftl.TakeCheckpoint(t));
  for (Lba i = 0; i < tail; ++i) {
    ftl.WritePage(i % n, {1'000'000 + i, {}}, t);
    t += Microseconds(20);
  }
  return ftl.RebuildFromNand(t + Seconds(1));
}

std::uint64_t FastReads(const ftl::PageFtl::RebuildReport& r) {
  return r.checkpoint_pages_read + r.journal_pages_read +
         r.delta_pages_scanned;
}

void RebuildVsFillCheckpointed(JsonWriter& json) {
  PrintHeader("fault_recovery — O(Δ) rebuild vs fill, fixed journal tail");
  std::printf("%-12s %-6s %12s %10s %10s %9s %9s\n", "geometry", "fill",
              "full_scan", "fast_reads", "full_ms", "fast_ms", "speedup");

  json.Key("rebuild_vs_fill_checkpointed").BeginArray();
  for (const RecoveryGeometry& g : RecoveryGeometries()) {
    for (double fill : {0.25, 0.5, 0.75, 0.9}) {
      ftl::PageFtl::RebuildReport full =
          FillAndRebuild(g, false, fill, g.fixed_tail);
      ftl::PageFtl::RebuildReport fast =
          FillAndRebuild(g, true, fill, g.fixed_tail);
      double full_ms = ToSeconds(full.duration) * 1e3;
      double fast_ms = ToSeconds(fast.duration) * 1e3;
      double speedup = fast_ms > 0.0 ? full_ms / fast_ms : 0.0;
      std::printf("%-12s %-6.2f %12zu %10llu %10.2f %9.3f %8.1fx\n", g.name,
                  fill, full.pages_scanned,
                  (unsigned long long)FastReads(fast), full_ms, fast_ms,
                  speedup);
      json.BeginObject()
          .Field("geometry", g.name)
          .Field("fill", fill)
          .Field("tail_writes", static_cast<std::uint64_t>(g.fixed_tail))
          .Field("full_pages_scanned",
                 static_cast<std::uint64_t>(full.pages_scanned))
          .Field("full_ms", full_ms)
          .Field("used_checkpoint", fast.used_checkpoint)
          .Field("checkpoint_pages_read",
                 static_cast<std::uint64_t>(fast.checkpoint_pages_read))
          .Field("journal_pages_read",
                 static_cast<std::uint64_t>(fast.journal_pages_read))
          .Field("delta_pages_scanned",
                 static_cast<std::uint64_t>(fast.delta_pages_scanned))
          .Field("fast_ms", fast_ms)
          .Field("speedup", speedup)
          .EndObject();
    }
  }
  json.EndArray();
}

void RebuildVsInterval(JsonWriter& json) {
  PrintHeader("fault_recovery — O(Δ) rebuild vs checkpoint interval, 50% fill");
  std::printf("%-12s %-10s %10s %10s %10s %9s\n", "geometry", "interval_s",
              "tail", "replayed", "fast_reads", "fast_ms");

  json.Key("rebuild_vs_interval").BeginArray();
  const double fill = 0.5;
  for (const RecoveryGeometry& g : RecoveryGeometries()) {
    // Full-scan baseline at the same fill, once per geometry, for the ratio.
    ftl::PageFtl::RebuildReport full = FillAndRebuild(g, false, fill, 0);
    double full_ms = ToSeconds(full.duration) * 1e3;
    for (double interval_s : {1.0, 2.0, 5.0, 10.0}) {
      // The checkpoint interval bounds the journal tail: at the bench write
      // rate, a worst-case crash (just before the next commit) lands
      // rate × interval writes past the horizon.
      Lba tail = static_cast<Lba>(
          static_cast<double>(g.tail_per_interval_second) * interval_s);
      ftl::PageFtl::RebuildReport fast = FillAndRebuild(g, true, fill, tail);
      double fast_ms = ToSeconds(fast.duration) * 1e3;
      std::printf("%-12s %-10.0f %10llu %10zu %10llu %9.3f\n", g.name,
                  interval_s, (unsigned long long)tail,
                  fast.journal_records_replayed,
                  (unsigned long long)FastReads(fast), fast_ms);
      json.BeginObject()
          .Field("geometry", g.name)
          .Field("interval_s", interval_s)
          .Field("fill", fill)
          .Field("tail_writes", static_cast<std::uint64_t>(tail))
          .Field("journal_records_replayed",
                 static_cast<std::uint64_t>(fast.journal_records_replayed))
          .Field("used_checkpoint", fast.used_checkpoint)
          .Field("fast_reads", FastReads(fast))
          .Field("fast_ms", fast_ms)
          .Field("full_ms", full_ms)
          .EndObject();
    }
  }
  json.EndArray();
}

// ---------------------------------------------------------------------------
// Part 2: fault absorption under sustained writes.

void FaultAbsorption(JsonWriter& json, std::size_t reps) {
  PrintHeader("fault_recovery — grown-defect absorption under load");
  ftl::FtlConfig cfg;
  cfg.geometry = BenchGeometry();
  cfg.latency = nand::LatencyModel::Zero();
  cfg.errors.program_fail_prob = 2e-4;
  cfg.errors.erase_fail_prob = 1e-4;
  cfg.retention_window = Seconds(2);
  ftl::PageFtl ftl(cfg);

  const Lba n = ftl.ExportedLbas();
  const Lba span = n / 2;
  const std::size_t ops = 20'000 * reps;
  SimTime t = Seconds(1);
  for (Lba lba = 0; lba < span; ++lba) {
    ftl.WritePage(lba, {lba, {}}, t);
    t += Microseconds(20);
  }
  std::uint64_t seed = 0xFA017;
  for (std::size_t i = 0; i < ops; ++i) {
    t += Milliseconds(1);
    ftl.WritePage(Lcg(seed) % span, {1'000'000 + i, {}}, t);
  }

  const ftl::FtlStats& s = ftl.Stats();
  bool invariants_ok = ftl.CheckInvariants().empty();
  std::printf(
      "ops %zu: %llu program fails re-driven, %llu erase fails, "
      "%llu blocks retired, degraded=%s, invariants=%s\n",
      ops, (unsigned long long)s.program_fails,
      (unsigned long long)s.erase_fails, (unsigned long long)s.blocks_retired,
      ftl.IsDegraded() ? "yes" : "no", invariants_ok ? "ok" : "VIOLATED");
  json.Key("fault_absorption")
      .BeginObject()
      .Field("ops", static_cast<std::uint64_t>(ops))
      .Field("program_fails", s.program_fails)
      .Field("write_redrives", s.write_redrives)
      .Field("erase_fails", s.erase_fails)
      .Field("blocks_retired", s.blocks_retired)
      .Field("forced_releases", s.forced_releases)
      .Field("degraded", ftl.IsDegraded())
      .Field("invariants_ok", invariants_ok)
      .EndObject();
}

// ---------------------------------------------------------------------------
// Part 3: detection scores on ideal vs faulty media.

void DetectionUnderFaults(JsonWriter& json) {
  PrintHeader("fault_recovery — detection scores, ideal vs faulty media");
  core::DecisionTree tree = core::PretrainedTree();
  std::printf("%-16s %12s %12s %8s\n", "family", "clean_score", "faulty_score",
              "delta");

  json.Key("detection_under_faults").BeginArray();
  for (const char* family : {"WannaCry", "Mole", "InHouse.inplace"}) {
    host::InterleavedConfig cfg;
    cfg.benign_tenants = 2;
    cfg.ransomware = family;
    cfg.duration = Seconds(30);
    cfg.ransom_start = Seconds(8);
    cfg.seed = 7;
    host::InterleavedResult clean = host::RunInterleavedDetection(tree, cfg);
    cfg.ftl.errors.program_fail_prob = 1e-3;
    cfg.ftl.error_seed = 0xFA17;
    host::InterleavedResult faulty = host::RunInterleavedDetection(tree, cfg);

    int delta = faulty.max_score - clean.max_score;
    std::printf("%-16s %12d %12d %8d\n", family, clean.max_score,
                faulty.max_score, delta);
    json.BeginObject()
        .Field("family", family)
        .Field("clean_score", clean.max_score)
        .Field("faulty_score", faulty.max_score)
        .Field("clean_alarm", clean.alarm)
        .Field("faulty_alarm", faulty.alarm)
        .Field("score_delta", delta)
        .EndObject();
  }
  json.EndArray();
}

// ---------------------------------------------------------------------------
// Part 4: rollback through a power cut.

/// Tree voting ransomware iff OWIO > 30 — deterministic alarm behavior, so
/// the trial measures the recovery path, not detector variance.
core::DecisionTree OwioTree() {
  std::vector<core::DecisionTree::Node> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = core::FeatureId::kOwIo;
  nodes[0].threshold = 30.0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].is_leaf = true;
  nodes[1].label = false;
  nodes[2].is_leaf = true;
  nodes[2].label = true;
  return core::DecisionTree(std::move(nodes));
}

void PowerLossTrial(JsonWriter& json) {
  PrintHeader("fault_recovery — rollback through a mid-attack power cut");
  host::SsdConfig cfg;
  cfg.ftl.geometry = BenchGeometry();
  cfg.detector.slice_length = Seconds(1);
  cfg.detector.window_slices = 10;
  cfg.detector.score_threshold = 3;
  host::Ssd ssd(cfg, OwioTree());

  const Lba victims = 512;
  std::vector<IoRequest> trace;
  for (Lba lba = 0; lba < victims; ++lba) {
    trace.push_back({Seconds(1) + CostOf(lba, Milliseconds(5)),
                     lba, 1, IoMode::kWrite});
  }
  // Attack: read+overwrite sweeps of 64 blocks from t = 20 s.
  for (int s = 0; s < 8; ++s) {
    SimTime at = Seconds(20 + s);
    Lba base = static_cast<Lba>(s) * 64;
    trace.push_back({at, base, 64, IoMode::kRead});
    trace.push_back({at + 1000, base, 64, IoMode::kWrite});
  }

  host::PowerLossConfig plc;
  plc.crash_times = {Seconds(23)};  // mid-attack
  host::PowerLossInjector injector(ssd, plc);
  host::PowerLossReport report = injector.Replay(trace, 0);

  ssd.IdleUntil(ssd.Clock().Now() + Seconds(2));
  bool alarm = ssd.AlarmActive();
  if (alarm) ssd.RollBackNow();

  Lba recovered = 0;
  for (Lba lba = 0; lba < victims; ++lba) {
    ftl::FtlResult r = ssd.Ftl().ReadPage(lba, ssd.Clock().Now());
    // Benign request index == lba, so its payload stamp is 65536 * lba.
    if (r.ok() && r.data.stamp == 65536ull * lba) ++recovered;
  }
  double rebuild_ms =
      report.rebuilds.empty() ? 0.0 : ToSeconds(report.rebuilds[0].duration) * 1e3;
  std::printf(
      "crashes %zu, rebuild %.2f ms, alarm %s, recovered %llu/%llu LBAs\n",
      report.crashes, rebuild_ms, alarm ? "yes" : "NO",
      (unsigned long long)recovered, (unsigned long long)victims);
  json.Key("power_loss_trial")
      .BeginObject()
      .Field("crashes", static_cast<std::uint64_t>(report.crashes))
      .Field("rebuild_ms", rebuild_ms)
      .Field("alarm", alarm)
      .Field("lbas_checked", static_cast<std::uint64_t>(victims))
      .Field("lbas_recovered", static_cast<std::uint64_t>(recovered))
      .Field("perfect_recovery", recovered == victims)
      .EndObject();
}

}  // namespace
}  // namespace insider::bench

int main() {
  using insider::bench::JsonWriter;
  const std::size_t reps = insider::bench::RepsFromEnv(4);
  JsonWriter json("BENCH_fault.json");
  json.BeginObject();
  json.Field("bench", "fault_recovery").Field("reps", reps);
  insider::bench::RebuildVsFill(json);
  insider::bench::RebuildVsFillCheckpointed(json);
  insider::bench::RebuildVsInterval(json);
  insider::bench::FaultAbsorption(json, reps);
  insider::bench::DetectionUnderFaults(json);
  insider::bench::PowerLossTrial(json);
  json.EndObject();
  std::printf("[bench] wrote %s\n", json.Path().c_str());
  return 0;
}
