// Device-fault resilience characterization.
//
// Part 1 — OOB rebuild cost vs fill level: how long the power-loss mapping
// reconstruction (PageFtl::RebuildFromNand) takes as a function of how much
// of the device holds data. The scan is linear in programmed pages, so this
// is the firmware's worst-case boot-after-crash latency curve.
//
// Part 2 — fault absorption under sustained load: a write-heavy mix on
// media with realistic grown-defect rates (2e-4 program fails, 1e-4 erase
// fails). Reports how many faults the FTL re-drove / how many blocks it
// retired, with the full invariant check as the pass criterion.
//
// Part 3 — detection robustness: the multi-tenant detection scenario of
// mqueue_throughput on ideal vs faulty media; the paper's scores must not
// move (the detector sees headers, the fault handling stays below it).
//
// Part 4 — the recovery promise through a power cut: benign fill, attack,
// power loss mid-attack, reboot, rollback; counts how many victim LBAs read
// back their pre-attack payload (the paper's claim: all of them).
//
// Emits BENCH_fault.json. INSIDER_BENCH_REPS scales workload sizes.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/pretrained.h"
#include "ftl/page_ftl.h"
#include "host/experiment.h"
#include "host/power_loss.h"
#include "host/ssd.h"
#include "json_writer.h"
#include "nand/geometry.h"

namespace insider::bench {
namespace {

std::uint64_t Lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s >> 33;
}

nand::Geometry BenchGeometry() {
  nand::Geometry g;  // 4x4 chips, 32k pages = 128 MB simulated
  g.channels = 4;
  g.ways = 4;
  g.blocks_per_chip = 64;
  g.pages_per_block = 32;
  return g;
}

// ---------------------------------------------------------------------------
// Part 1: rebuild scan time vs fill level.

void RebuildVsFill(JsonWriter& json) {
  PrintHeader("fault_recovery — OOB rebuild cost vs fill level");
  std::printf("%-8s %12s %12s %10s %12s\n", "fill", "scanned", "mappings",
              "backups", "rebuild_ms");

  json.Key("rebuild_vs_fill").BeginArray();
  for (double fill : {0.25, 0.5, 0.75, 0.9}) {
    ftl::FtlConfig cfg;
    cfg.geometry = BenchGeometry();  // default (non-zero) latency model
    ftl::PageFtl ftl(cfg);
    const Lba n = static_cast<Lba>(
        static_cast<double>(ftl.ExportedLbas()) * fill);
    SimTime t = Seconds(1);
    for (Lba lba = 0; lba < n; ++lba) {
      ftl.WritePage(lba, {lba, {}}, t);
      t += Microseconds(20);
    }
    // A fresh overwrite tail so the scan also rebuilds recovery-queue
    // entries, not just clean mappings.
    SimTime crash = t + Seconds(1);
    for (Lba lba = 0; lba < n / 10; ++lba) {
      ftl.WritePage(lba, {1'000'000 + lba, {}}, crash - Milliseconds(500));
    }

    ftl::PageFtl::RebuildReport r = ftl.RebuildFromNand(crash);
    double ms = ToSeconds(r.duration) * 1e3;
    std::printf("%-8.2f %12zu %12zu %10zu %12.2f\n", fill, r.pages_scanned,
                r.mappings_restored, r.backups_restored, ms);
    json.BeginObject()
        .Field("fill", fill)
        .Field("pages_scanned", static_cast<std::uint64_t>(r.pages_scanned))
        .Field("mappings_restored",
               static_cast<std::uint64_t>(r.mappings_restored))
        .Field("backups_restored",
               static_cast<std::uint64_t>(r.backups_restored))
        .Field("rebuild_ms", ms)
        .EndObject();
  }
  json.EndArray();
}

// ---------------------------------------------------------------------------
// Part 2: fault absorption under sustained writes.

void FaultAbsorption(JsonWriter& json, std::size_t reps) {
  PrintHeader("fault_recovery — grown-defect absorption under load");
  ftl::FtlConfig cfg;
  cfg.geometry = BenchGeometry();
  cfg.latency = nand::LatencyModel::Zero();
  cfg.errors.program_fail_prob = 2e-4;
  cfg.errors.erase_fail_prob = 1e-4;
  cfg.retention_window = Seconds(2);
  ftl::PageFtl ftl(cfg);

  const Lba n = ftl.ExportedLbas();
  const Lba span = n / 2;
  const std::size_t ops = 20'000 * reps;
  SimTime t = Seconds(1);
  for (Lba lba = 0; lba < span; ++lba) {
    ftl.WritePage(lba, {lba, {}}, t);
    t += Microseconds(20);
  }
  std::uint64_t seed = 0xFA017;
  for (std::size_t i = 0; i < ops; ++i) {
    t += Milliseconds(1);
    ftl.WritePage(Lcg(seed) % span, {1'000'000 + i, {}}, t);
  }

  const ftl::FtlStats& s = ftl.Stats();
  bool invariants_ok = ftl.CheckInvariants().empty();
  std::printf(
      "ops %zu: %llu program fails re-driven, %llu erase fails, "
      "%llu blocks retired, degraded=%s, invariants=%s\n",
      ops, (unsigned long long)s.program_fails,
      (unsigned long long)s.erase_fails, (unsigned long long)s.blocks_retired,
      ftl.IsDegraded() ? "yes" : "no", invariants_ok ? "ok" : "VIOLATED");
  json.Key("fault_absorption")
      .BeginObject()
      .Field("ops", static_cast<std::uint64_t>(ops))
      .Field("program_fails", s.program_fails)
      .Field("write_redrives", s.write_redrives)
      .Field("erase_fails", s.erase_fails)
      .Field("blocks_retired", s.blocks_retired)
      .Field("forced_releases", s.forced_releases)
      .Field("degraded", ftl.IsDegraded())
      .Field("invariants_ok", invariants_ok)
      .EndObject();
}

// ---------------------------------------------------------------------------
// Part 3: detection scores on ideal vs faulty media.

void DetectionUnderFaults(JsonWriter& json) {
  PrintHeader("fault_recovery — detection scores, ideal vs faulty media");
  core::DecisionTree tree = core::PretrainedTree();
  std::printf("%-16s %12s %12s %8s\n", "family", "clean_score", "faulty_score",
              "delta");

  json.Key("detection_under_faults").BeginArray();
  for (const char* family : {"WannaCry", "Mole", "InHouse.inplace"}) {
    host::InterleavedConfig cfg;
    cfg.benign_tenants = 2;
    cfg.ransomware = family;
    cfg.duration = Seconds(30);
    cfg.ransom_start = Seconds(8);
    cfg.seed = 7;
    host::InterleavedResult clean = host::RunInterleavedDetection(tree, cfg);
    cfg.ftl.errors.program_fail_prob = 1e-3;
    cfg.ftl.error_seed = 0xFA17;
    host::InterleavedResult faulty = host::RunInterleavedDetection(tree, cfg);

    int delta = faulty.max_score - clean.max_score;
    std::printf("%-16s %12d %12d %8d\n", family, clean.max_score,
                faulty.max_score, delta);
    json.BeginObject()
        .Field("family", family)
        .Field("clean_score", clean.max_score)
        .Field("faulty_score", faulty.max_score)
        .Field("clean_alarm", clean.alarm)
        .Field("faulty_alarm", faulty.alarm)
        .Field("score_delta", delta)
        .EndObject();
  }
  json.EndArray();
}

// ---------------------------------------------------------------------------
// Part 4: rollback through a power cut.

/// Tree voting ransomware iff OWIO > 30 — deterministic alarm behavior, so
/// the trial measures the recovery path, not detector variance.
core::DecisionTree OwioTree() {
  std::vector<core::DecisionTree::Node> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = core::FeatureId::kOwIo;
  nodes[0].threshold = 30.0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].is_leaf = true;
  nodes[1].label = false;
  nodes[2].is_leaf = true;
  nodes[2].label = true;
  return core::DecisionTree(std::move(nodes));
}

void PowerLossTrial(JsonWriter& json) {
  PrintHeader("fault_recovery — rollback through a mid-attack power cut");
  host::SsdConfig cfg;
  cfg.ftl.geometry = BenchGeometry();
  cfg.detector.slice_length = Seconds(1);
  cfg.detector.window_slices = 10;
  cfg.detector.score_threshold = 3;
  host::Ssd ssd(cfg, OwioTree());

  const Lba victims = 512;
  std::vector<IoRequest> trace;
  for (Lba lba = 0; lba < victims; ++lba) {
    trace.push_back({Seconds(1) + static_cast<SimTime>(lba) * Milliseconds(5),
                     lba, 1, IoMode::kWrite});
  }
  // Attack: read+overwrite sweeps of 64 blocks from t = 20 s.
  for (int s = 0; s < 8; ++s) {
    SimTime at = Seconds(20 + s);
    Lba base = static_cast<Lba>(s) * 64;
    trace.push_back({at, base, 64, IoMode::kRead});
    trace.push_back({at + 1000, base, 64, IoMode::kWrite});
  }

  host::PowerLossConfig plc;
  plc.crash_times = {Seconds(23)};  // mid-attack
  host::PowerLossInjector injector(ssd, plc);
  host::PowerLossReport report = injector.Replay(trace, 0);

  ssd.IdleUntil(ssd.Clock().Now() + Seconds(2));
  bool alarm = ssd.AlarmActive();
  if (alarm) ssd.RollBackNow();

  Lba recovered = 0;
  for (Lba lba = 0; lba < victims; ++lba) {
    ftl::FtlResult r = ssd.Ftl().ReadPage(lba, ssd.Clock().Now());
    // Benign request index == lba, so its payload stamp is 65536 * lba.
    if (r.ok() && r.data.stamp == 65536ull * lba) ++recovered;
  }
  double rebuild_ms =
      report.rebuilds.empty() ? 0.0 : ToSeconds(report.rebuilds[0].duration) * 1e3;
  std::printf(
      "crashes %zu, rebuild %.2f ms, alarm %s, recovered %llu/%llu LBAs\n",
      report.crashes, rebuild_ms, alarm ? "yes" : "NO",
      (unsigned long long)recovered, (unsigned long long)victims);
  json.Key("power_loss_trial")
      .BeginObject()
      .Field("crashes", static_cast<std::uint64_t>(report.crashes))
      .Field("rebuild_ms", rebuild_ms)
      .Field("alarm", alarm)
      .Field("lbas_checked", static_cast<std::uint64_t>(victims))
      .Field("lbas_recovered", static_cast<std::uint64_t>(recovered))
      .Field("perfect_recovery", recovered == victims)
      .EndObject();
}

}  // namespace
}  // namespace insider::bench

int main() {
  using insider::bench::JsonWriter;
  const std::size_t reps = insider::bench::RepsFromEnv(4);
  JsonWriter json("BENCH_fault.json");
  json.BeginObject();
  json.Field("bench", "fault_recovery").Field("reps", reps);
  insider::bench::RebuildVsFill(json);
  insider::bench::FaultAbsorption(json, reps);
  insider::bench::DetectionUnderFaults(json);
  insider::bench::PowerLossTrial(json);
  json.EndObject();
  std::printf("[bench] wrote %s\n", json.Path().c_str());
  return 0;
}
