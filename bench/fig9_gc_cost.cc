// Fig. 9 reproduction: GC page copies, conventional FTL vs SSD-Insider FTL,
// on the Table I testing traces at 90% utilization (worst case), plus the
// 70% (average case) comparison the paper reports as ~0% overhead.
#include <cstdio>

#include "bench_util.h"
#include "host/experiment.h"

int main() {
  using namespace insider;

  host::ScenarioConfig sc = bench::BenchScenario();
  // Long enough that the write-heavy traces (Compression, VideoEncode,
  // WannaCry — the ones the paper says dominate GC) chew through the free
  // pool; a large file set so WannaCry keeps writing the whole time.
  sc.duration = Seconds(60);
  sc.fileset_files = 6000;
  // Keep workload LBAs inside the simulated device (1-GB geometry,
  // ~236k exported LBAs at 90%).
  host::GcExperimentConfig gc_cfg;
  nand::Geometry geo = gc_cfg.geometry;
  sc.lba_space =
      static_cast<Lba>(static_cast<double>(geo.TotalPages()) * 0.9);

  for (double fill : {0.9, 0.7}) {
    bench::PrintHeader(fill == 0.9
                           ? "Fig. 9: GC page copies @ 90% utilization "
                             "(worst case)"
                           : "GC page copies @ 70% utilization (average "
                             "case)");
    std::printf("%-28s %14s %14s %10s\n", "trace (app+ransomware)",
                "conventional", "ssd-insider", "overhead");
    double overhead_sum = 0;
    int overhead_n = 0;
    int traces = 0;
    for (const host::ScenarioSpec& spec : host::TestingScenarios()) {
      host::BuiltScenario built = host::BuildScenario(spec, sc, 55);
      host::GcExperimentConfig cfg;
      cfg.fill_fraction = fill;
      // Scale the retention window to the simulated device: the paper's
      // 512-GB drive keeps 10 s of backups in a sliver of its
      // over-provisioning; on a 1-GB simulated device the same *fraction*
      // of OP corresponds to ~1 s of heavy-write backups.
      cfg.retention_window = Seconds(1);
      host::GcResult r = host::RunGcExperiment(built, cfg);
      std::string label = spec.label +
                          (spec.ransomware.empty() ? "" : "+" +
                           spec.ransomware);
      std::printf("%-28s %14llu %14llu %9.1f%%\n", label.c_str(),
                  static_cast<unsigned long long>(r.copies_conventional),
                  static_cast<unsigned long long>(r.copies_insider),
                  r.OverheadPercent());
      ++traces;
      if (r.copies_conventional > 0) {
        overhead_sum += r.OverheadPercent();
        ++overhead_n;
      }
    }
    if (overhead_n > 0) {
      std::printf("%-28s %14s %14s %9.1f%%\n", "AVERAGE (traces with GC)",
                  "", "", overhead_sum / overhead_n);
      std::printf("%-28s %14s %14s %9.1f%%\n", "AVERAGE (all traces)", "",
                  "", overhead_sum / traces);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: ~0%% extra copies at 70%% utilization; a "
              "bounded\npremium (paper: 22%% average) at 90%% on "
              "write-heavy traces.\n");
  return 0;
}
