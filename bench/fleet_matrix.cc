// Fleet-scale serving matrix (ISSUE 10 tentpole).
//
// Part 1 — detection matrix: 64 tenants (victims running 3 ransomware
// families spread across WRR service classes, benign backgrounds, noisy
// neighbors at elevated intensity) multiplex over 8 weighted queue pairs
// into one device with a per-namespace detector pool. Reports per-tenant
// detection / false-positive outcomes, per-family detection rates, and WRR
// fairness (per-weight-class p99 vs weight).
//
// Part 2 — DRAM budget sweep: the same fleet re-run under shrinking
// detector-pool budgets (unbounded -> 1/2 -> 1/4 -> 1/8 of the fleet's
// unconstrained footprint), showing graceful degradation: pressure events
// climb, modeled bytes stay under the budget, detection keeps working.
//
// Part 3 — single-tenant identity: a 1-tenant fleet scores bit-identically
// (max_score, alarm time) with the pool in shared mode (seed behavior) and
// in per-namespace mode — the pool is pure routing when it holds one
// working instance.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/pretrained.h"
#include "host/fleet.h"
#include "json_writer.h"

namespace insider::bench {
namespace {

host::FleetConfig BaseFleet(std::size_t reps) {
  host::FleetConfig fc;
  fc.tenants = 64;
  fc.families = {"WannaCry", "Mole", "Jaff"};
  fc.victim_fraction = 0.25;
  fc.noisy_fraction = 0.25;
  fc.duration = Seconds(static_cast<std::int64_t>(16 + 8 * reps));
  fc.attack_start = Seconds(8);
  fc.queue_count = 8;
  fc.queue_weights = {1, 2, 4, 8};
  fc.seed = 42;
  return fc;
}

void EmitTenantRows(JsonWriter& json, const host::FleetResult& result) {
  json.Key("per_tenant").BeginArray();
  for (const host::FleetTenantResult& t : result.tenants) {
    json.BeginObject()
        .Field("name", t.name.c_str())
        .Field("profile", t.profile.c_str())
        .Field("ransomware", t.is_ransomware)
        .Field("noisy", t.noisy)
        .Field("nsid", static_cast<std::uint64_t>(t.nsid))
        .Field("queue", t.queue)
        .Field("weight", static_cast<std::uint64_t>(t.weight))
        .Field("detected", t.detected)
        .Field("evicted", t.evicted)
        .Field("max_score", static_cast<std::int64_t>(t.max_score))
        .Field("alarm_us",
               t.alarm_time ? static_cast<std::int64_t>(RawMicros(*t.alarm_time))
                            : static_cast<std::int64_t>(-1))
        .Field("detect_latency_us", RawMicrosU64(t.detection_latency))
        .Field("p99_us", RawMicrosU64(t.p99_latency))
        .Field("mean_us", t.mean_latency_us)
        .Field("completed", t.completed)
        .Field("errors", t.errors)
        .Field("stalls", t.stalls)
        .EndObject();
  }
  json.EndArray();
}

void EmitPool(JsonWriter& json, const host::FleetResult& result) {
  json.Key("pool")
      .BeginObject()
      .Field("instances", result.pool_instances)
      .Field("bytes", result.pool_bytes)
      .Field("budget", result.pool_budget)
      .Field("evictions", result.pool_evictions)
      .Field("over_budget", result.pool_over_budget)
      .Field("pressure_events", result.pool_pressure_events)
      .Field("within_budget", result.pool_within_budget)
      .EndObject();
}

void FleetMatrix(JsonWriter& json, const host::FleetConfig& fc,
                 host::FleetResult& result) {
  PrintHeader("fleet_matrix — 64 tenants x 3 families through 8 WRR pairs");
  result = host::RunFleet(core::PretrainedTree(), fc);

  // Per-family detection and per-weight fairness aggregation.
  struct FamilyAgg { std::size_t victims = 0, detected = 0; };
  std::map<std::string, FamilyAgg> families;
  struct WeightAgg { std::size_t tenants = 0; double p99_sum = 0; };
  std::map<std::uint32_t, WeightAgg> weights;
  for (const host::FleetTenantResult& t : result.tenants) {
    if (t.is_ransomware) {
      FamilyAgg& f = families[t.profile];
      ++f.victims;
      if (t.detected) ++f.detected;
    }
    WeightAgg& w = weights[t.weight];
    ++w.tenants;
    w.p99_sum += static_cast<double>(RawMicros(t.p99_latency));
  }

  std::printf("tenants=%zu victims=%zu detected=%zu (%.0f%%)  benign=%zu "
              "false_pos=%zu (%.1f%%)  IOPS=%.0f\n",
              result.tenants.size(), result.victims, result.detected_victims,
              100.0 * result.DetectionRate(), result.benign,
              result.false_positives, 100.0 * result.FalsePositiveRate(),
              result.total_iops);
  for (const auto& [name, f] : families) {
    std::printf("  family %-12s %zu/%zu detected\n", name.c_str(), f.detected,
                f.victims);
  }
  std::printf("%8s %8s %12s\n", "weight", "tenants", "mean_p99_us");
  for (const auto& [w, agg] : weights) {
    std::printf("%8u %8zu %12.0f\n", w, agg.tenants,
                agg.p99_sum / static_cast<double>(agg.tenants));
  }
  std::printf("pool: %zu instances, %zu bytes (budget %zu), %llu evictions, "
              "%zu pressure events\n",
              result.pool_instances, result.pool_bytes, result.pool_budget,
              static_cast<unsigned long long>(result.pool_evictions),
              result.pool_pressure_events);

  json.Key("fleet").BeginObject();
  json.Field("tenants", result.tenants.size())
      .Field("queues", fc.queue_count)
      .Field("duration_us", RawMicrosU64(fc.duration))
      .Field("victims", result.victims)
      .Field("detected_victims", result.detected_victims)
      .Field("detection_rate", result.DetectionRate())
      .Field("benign", result.benign)
      .Field("false_positives", result.false_positives)
      .Field("false_positive_rate", result.FalsePositiveRate())
      .Field("total_iops", result.total_iops);
  json.Key("families").BeginArray();
  for (const auto& [name, f] : families) {
    json.BeginObject()
        .Field("family", name.c_str())
        .Field("victims", f.victims)
        .Field("detected", f.detected)
        .EndObject();
  }
  json.EndArray();
  json.Key("fairness").BeginArray();
  for (const auto& [w, agg] : weights) {
    json.BeginObject()
        .Field("weight", static_cast<std::uint64_t>(w))
        .Field("tenants", agg.tenants)
        .Field("mean_p99_us", agg.p99_sum / static_cast<double>(agg.tenants))
        .EndObject();
  }
  json.EndArray();
  EmitPool(json, result);
  EmitTenantRows(json, result);
  json.EndObject();
}

void BudgetSweep(JsonWriter& json, const host::FleetConfig& base,
                 const host::FleetResult& unbounded) {
  PrintHeader("fleet_matrix — detector-pool DRAM budget sweep");
  std::printf("%14s %10s %10s %8s %9s %9s %7s %10s\n", "budget", "bytes",
              "instances", "evicted", "pressure", "overbud", "within",
              "det_rate");

  json.Key("budget_sweep").BeginArray();
  const std::size_t full = unbounded.pool_bytes;
  for (std::size_t divisor : {0u, 2u, 4u, 8u}) {
    host::FleetConfig fc = base;
    fc.pool.dram_budget_bytes = divisor == 0 ? 0 : full / divisor;
    host::FleetResult r =
        divisor == 0 ? unbounded : host::RunFleet(core::PretrainedTree(), fc);
    std::printf("%14zu %10zu %10zu %8llu %9zu %9llu %7s %9.0f%%\n",
                fc.pool.dram_budget_bytes, r.pool_bytes, r.pool_instances,
                static_cast<unsigned long long>(r.pool_evictions),
                r.pool_pressure_events,
                static_cast<unsigned long long>(r.pool_over_budget),
                r.pool_within_budget ? "yes" : "NO",
                100.0 * r.DetectionRate());
    json.BeginObject()
        .Field("budget", fc.pool.dram_budget_bytes)
        .Field("bytes", r.pool_bytes)
        .Field("instances", r.pool_instances)
        .Field("evictions", r.pool_evictions)
        .Field("pressure_events", r.pool_pressure_events)
        .Field("over_budget", r.pool_over_budget)
        .Field("within_budget", r.pool_within_budget)
        .Field("detection_rate", r.DetectionRate())
        .Field("false_positive_rate", r.FalsePositiveRate())
        .EndObject();
  }
  json.EndArray();
}

void SingleTenantIdentity(JsonWriter& json, const host::FleetConfig& base) {
  PrintHeader("fleet_matrix — single-tenant identity: shared vs pooled");
  host::FleetConfig fc = base;
  fc.tenants = 1;
  fc.victim_fraction = 1.0;
  fc.families = {"WannaCry"};
  fc.queue_count = 1;
  fc.queue_weights = {1};

  fc.pool.per_namespace = false;  // the seed shared-detector path
  host::FleetResult shared = host::RunFleet(core::PretrainedTree(), fc);
  fc.pool.per_namespace = true;  // one pooled instance
  host::FleetResult pooled = host::RunFleet(core::PretrainedTree(), fc);

  const host::FleetTenantResult& s = shared.tenants.at(0);
  const host::FleetTenantResult& p = pooled.tenants.at(0);
  const bool identical =
      s.max_score == p.max_score && s.alarm_time == p.alarm_time;
  std::printf("shared: max_score=%d alarm=%lld | pooled: max_score=%d "
              "alarm=%lld | identical=%s\n",
              s.max_score,
              s.alarm_time ? static_cast<long long>(RawMicros(*s.alarm_time))
                           : -1LL,
              p.max_score,
              p.alarm_time ? static_cast<long long>(RawMicros(*p.alarm_time))
                           : -1LL,
              identical ? "yes" : "NO");

  json.Key("single_tenant_identity")
      .BeginObject()
      .Field("shared_max_score", static_cast<std::int64_t>(s.max_score))
      .Field("pooled_max_score", static_cast<std::int64_t>(p.max_score))
      .Field("shared_alarm_us",
             s.alarm_time ? static_cast<std::int64_t>(RawMicros(*s.alarm_time))
                          : static_cast<std::int64_t>(-1))
      .Field("pooled_alarm_us",
             p.alarm_time ? static_cast<std::int64_t>(RawMicros(*p.alarm_time))
                          : static_cast<std::int64_t>(-1))
      .Field("identical", identical)
      .EndObject();
}

}  // namespace
}  // namespace insider::bench

int main() {
  using namespace insider;
  const std::size_t reps = bench::RepsFromEnv(2);
  bench::JsonWriter json("BENCH_fleet.json");
  json.BeginObject();
  json.Field("bench", "fleet_matrix");
  json.Field("reps", reps);

  host::FleetConfig fc = bench::BaseFleet(reps);
  host::FleetResult unbounded;
  bench::FleetMatrix(json, fc, unbounded);
  bench::BudgetSweep(json, fc, unbounded);
  bench::SingleTenantIdentity(json, fc);

  json.EndObject();
  std::printf("[bench] wrote %s\n", json.Path().c_str());
  return 0;
}
