// Table II reproduction: repeated attack -> detect -> rollback -> fsck
// trials. The paper runs its custom ransomware 100 times and reports, per
// corruption type, how often fsck saw it, that all were resolved, and that
// no encrypted files remained.
#include <cstdio>

#include "bench_util.h"
#include "core/pretrained.h"
#include "host/experiment.h"

int main() {
  using namespace insider;
  std::size_t trials = bench::RepsFromEnv(20);

  host::ConsistencyTrialConfig base;  // 256-MB device, 200 small documents

  std::size_t detected = 0, recovered_all = 0;
  std::size_t no_corruption = 0, wrong_free_block = 0, wrong_inode_block = 0,
               bitmap = 0, other = 0, unresolved = 0;
  std::size_t files_total = 0, files_intact = 0, files_encrypted = 0,
               files_corrupt = 0;
  double worst_latency = 0, worst_rollback = 0;

  for (std::size_t t = 0; t < trials; ++t) {
    host::ConsistencyTrialConfig cfg = base;
    cfg.seed = t + 1;
    host::ConsistencyTrialResult r =
        host::RunConsistencyTrial(core::PretrainedTree(), cfg);
    if (!r.detected) {
      std::printf("trial %zu: NOT DETECTED\n", t + 1);
      continue;
    }
    ++detected;
    worst_latency = std::max(worst_latency, ToSeconds(r.detection_latency));
    worst_rollback = std::max(worst_rollback, ToSeconds(r.rollback_duration));

    const fs::FsckReport& b = r.fsck_before;
    bool any = false;
    if (b.wrong_free_block_count) { ++wrong_free_block; any = true; }
    if (b.wrong_inode_block_count) { ++wrong_inode_block; any = true; }
    if (b.bitmap_mismatches) { ++bitmap; any = true; }
    if (b.dangling_dir_entries || b.orphan_inodes || b.bad_pointers ||
        b.double_claimed_blocks || b.wrong_free_inode_count) {
      ++other;
      any = true;
    }
    if (!any) ++no_corruption;
    if (!r.clean_after_repair) ++unresolved;

    files_total += r.files_total;
    files_intact += r.files_intact;
    files_encrypted += r.files_encrypted;
    files_corrupt += r.files_corrupt;
    if (r.files_intact == r.files_total) ++recovered_all;
  }

  bench::PrintHeader("Table II: file-system consistency after recovery");
  std::printf("trials: %zu   detected: %zu   fully recovered: %zu\n\n",
              trials, detected, recovered_all);
  std::printf("%-28s %12s %12s\n", "type of corruption", "occurrences",
              "unresolved");
  std::printf("%-28s %12zu %12s\n", "No corruption", no_corruption, "-");
  std::printf("%-28s %12zu %12zu\n", "Wrong free-block count",
              wrong_free_block, unresolved);
  std::printf("%-28s %12zu %12zu\n", "Wrong inode-block count",
              wrong_inode_block, unresolved);
  std::printf("%-28s %12zu %12zu\n", "Free-space bitmap", bitmap, unresolved);
  std::printf("%-28s %12zu %12zu\n", "Other (orphans/dangling)", other,
              unresolved);
  std::printf("\nfiles: %zu total, %zu intact, %zu left encrypted, "
              "%zu corrupt\n",
              files_total, files_intact, files_encrypted, files_corrupt);
  std::printf("worst detection latency: %.2f s (paper: <10 s)\n",
              worst_latency);
  std::printf("worst rollback duration: %.4f s (paper: <1 s)\n",
              worst_rollback);
  std::printf("\nExpected shape: every trial detected, all corruption "
              "resolved by fsck,\n0 files left encrypted (paper: 0%% data "
              "loss after 100 runs).\n");
  return 0;
}
