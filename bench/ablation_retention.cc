// Ablation: the recovery-queue retention window.
//
// The paper fixes the window at 10 s (matched to the detection window).
// This bench sweeps it and reports the two quantities it trades off:
//   * GC page-copy overhead (longer retention = more retained pages for GC
//     to carry) — the Fig. 9 axis;
//   * recoverability headroom — how many seconds of the heaviest write
//     burst the over-provisioning can hold before backups must be
//     sacrificed (forced releases = unrecoverable data).
#include <cstdio>

#include "bench_util.h"
#include "host/experiment.h"

int main() {
  using namespace insider;

  host::ScenarioConfig sc = bench::BenchScenario();
  sc.duration = Seconds(30);
  host::GcExperimentConfig base;
  sc.lba_space =
      static_cast<Lba>(static_cast<double>(base.geometry.TotalPages()) * 0.9);

  // A write-heavy testing trace (database + in-house ransomware).
  host::BuiltScenario heavy = host::BuildScenario(
      {wl::AppKind::kDatabase, "InHouse.inplace", ""}, sc, 77);

  bench::PrintHeader(
      "Ablation: retention window vs GC overhead (90% utilization)");
  std::printf("%-14s %14s %14s %10s %16s\n", "retention", "conventional",
              "ssd-insider", "overhead", "forced releases");
  for (SimTime window : {Milliseconds(500), Seconds(1), Seconds(2),
                         Seconds(5), Seconds(10)}) {
    host::GcExperimentConfig cfg;
    cfg.fill_fraction = 0.9;
    cfg.retention_window = window;
    host::GcResult r = host::RunGcExperiment(heavy, cfg);

    // Forced releases measured on a dedicated insider run.
    ftl::FtlConfig fc;
    fc.geometry = cfg.geometry;
    fc.latency = nand::LatencyModel::Zero();
    fc.retention_window = window;
    ftl::PageFtl ftl(fc);
    Lba fill =
        static_cast<Lba>(static_cast<double>(ftl.ExportedLbas()) * 0.9);
    for (Lba lba = 0; lba < fill; ++lba) {
      ftl.WritePage(lba, {lba, {}}, 0);
    }
    ftl.ResetStats();
    Lba exported = ftl.ExportedLbas();
    for (const wl::TaggedRequest& t : heavy.merged) {
      if (t.request.mode != IoMode::kWrite) continue;
      Lba lba = t.request.lba % exported;
      std::uint32_t len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(t.request.length, exported - lba));
      for (std::uint32_t i = 0; i < len; ++i) {
        ftl.WritePage(lba + i, {1, {}}, t.request.time + Seconds(1));
      }
    }

    std::printf("%10.1f s %14llu %14llu %9.1f%% %16llu\n",
                ToSeconds(window),
                static_cast<unsigned long long>(r.copies_conventional),
                static_cast<unsigned long long>(r.copies_insider),
                r.OverheadPercent(),
                static_cast<unsigned long long>(
                    ftl.Stats().forced_releases));
  }
  std::printf(
      "\nExpected shape: overhead and forced releases grow with the window;\n"
      "the paper's 10-s window is what the detection latency requires — the\n"
      "device must provision OP for retention = window x peak write rate.\n");
  return 0;
}
