// Table III reproduction: DRAM required by SSD-Insider's data structures.
#include <cstdio>

#include "bench_util.h"
#include "host/dram.h"

int main() {
  using namespace insider;

  auto print = [](const char* title, const std::vector<host::DramRow>& rows) {
    bench::PrintHeader(title);
    std::printf("%-18s %12s %12s %12s\n", "data structure", "unit size",
                "# entries", "DRAM (MB)");
    for (const host::DramRow& r : rows) {
      std::printf("%-18s %10zu B %12zu %12.2f\n", r.structure.c_str(),
                  r.unit_bytes, r.entries, r.Megabytes());
    }
    std::printf("%-18s %12s %12s %12.2f\n", "TOTAL", "", "",
                host::TotalMegabytes(rows));
  };

  print("Table III (paper's packed firmware layout)",
        host::PaperDramBudget());

  core::DetectorConfig d;
  ftl::FtlConfig f;
  print("Table III (this implementation's in-memory footprint)",
        host::ActualDramBudget(d, f));

  std::printf("\nExpected shape: ~40 MB total with the paper's packed "
              "layout —\naffordable next to the >=1 GB DRAM of modern "
              "SSDs.\n");
  return 0;
}
