// Ablation: the paper fixes the time slice at 1 s and the window at N = 10
// slices (threshold 3). This bench sweeps both and reports detection
// latency and accuracy on a small scenario subset, showing why the paper's
// operating point is sensible (shorter windows detect faster but
// false-alarm more; longer slices delay detection).
#include <cstdio>

#include "bench_util.h"
#include "host/experiment.h"

int main() {
  using namespace insider;
  core::DecisionTree tree = bench::TrainPaperTree();

  std::vector<host::ScenarioSpec> attack_specs = {
      {wl::AppKind::kNone, "WannaCry", "RansomOnly"},
      {wl::AppKind::kVideoEncode, "Jaff", "CPU-intensive"},
  };
  std::vector<host::ScenarioSpec> benign_specs = {
      {wl::AppKind::kDataWiping, "", "DataWiping"},
      {wl::AppKind::kDatabase, "", "Database"},
  };
  std::size_t reps = bench::RepsFromEnv(3);

  bench::PrintHeader("Ablation: window size N (slice fixed at 1 s, "
                     "threshold = ceil(0.3*N))");
  std::printf("%-10s %12s %12s %12s\n", "N", "FRR %", "FAR %",
              "mean lat (s)");
  for (std::size_t n : {5u, 10u, 20u}) {
    host::AccuracyConfig ac;
    ac.scenario = bench::BenchScenario();
    ac.repetitions = reps;
    ac.detector.window_slices = n;
    ac.detector.score_threshold = static_cast<int>((3 * n + 9) / 10);

    std::size_t misses = 0, attacks = 0, fas = 0, benigns = 0;
    double lat_sum = 0;
    std::size_t lat_n = 0;
    std::uint64_t seed = 900;
    for (const host::ScenarioSpec& spec : attack_specs) {
      for (std::size_t rep = 0; rep < reps; ++rep) {
        host::BuiltScenario b =
            host::BuildScenario(spec, ac.scenario, seed++);
        host::DetectionRun run = host::RunDetection(
            tree, ac.detector, b.merged, b.ransom.active_begin);
        ++attacks;
        if (!run.alarm_time) {
          ++misses;
        } else {
          lat_sum += ToSeconds(*run.alarm_time - b.ransom.active_begin);
          ++lat_n;
        }
      }
    }
    for (const host::ScenarioSpec& spec : benign_specs) {
      for (std::size_t rep = 0; rep < reps; ++rep) {
        host::BuiltScenario b =
            host::BuildScenario(spec, ac.scenario, seed++);
        host::DetectionRun run =
            host::RunDetection(tree, ac.detector, b.merged);
        ++benigns;
        if (run.max_score >= ac.detector.score_threshold) ++fas;
      }
    }
    std::printf("%-10zu %12.1f %12.1f %12.2f\n", n,
                100.0 * static_cast<double>(misses) /
                    static_cast<double>(attacks),
                100.0 * static_cast<double>(fas) / static_cast<double>(benigns),
                lat_n ? lat_sum / static_cast<double>(lat_n) : 0.0);
  }

  bench::PrintHeader("Ablation: slice length (N = 10, threshold 3)");
  std::printf("%-10s %12s %12s %12s\n", "slice(ms)", "FRR %", "FAR %",
              "mean lat (s)");
  for (SimTime slice : {Milliseconds(500), Seconds(1), Seconds(2)}) {
    host::AccuracyConfig ac;
    ac.scenario = bench::BenchScenario();
    ac.repetitions = reps;
    ac.detector.slice_length = slice;

    std::size_t misses = 0, attacks = 0, fas = 0, benigns = 0;
    double lat_sum = 0;
    std::size_t lat_n = 0;
    std::uint64_t seed = 1700;
    for (const host::ScenarioSpec& spec : attack_specs) {
      for (std::size_t rep = 0; rep < reps; ++rep) {
        host::BuiltScenario b =
            host::BuildScenario(spec, ac.scenario, seed++);
        host::DetectionRun run = host::RunDetection(
            tree, ac.detector, b.merged, b.ransom.active_begin);
        ++attacks;
        if (!run.alarm_time) {
          ++misses;
        } else {
          lat_sum += ToSeconds(*run.alarm_time - b.ransom.active_begin);
          ++lat_n;
        }
      }
    }
    for (const host::ScenarioSpec& spec : benign_specs) {
      for (std::size_t rep = 0; rep < reps; ++rep) {
        host::BuiltScenario b =
            host::BuildScenario(spec, ac.scenario, seed++);
        host::DetectionRun run =
            host::RunDetection(tree, ac.detector, b.merged);
        ++benigns;
        if (run.max_score >= ac.detector.score_threshold) ++fas;
      }
    }
    std::printf("%-10lld %12.1f %12.1f %12.2f\n",
                static_cast<long long>(RawMicros(slice) / 1000),
                100.0 * static_cast<double>(misses) /
                    static_cast<double>(attacks),
                100.0 * static_cast<double>(fas) / static_cast<double>(benigns),
                lat_n ? lat_sum / static_cast<double>(lat_n) : 0.0);
  }
  std::printf("\nNote: the trained tree's thresholds are calibrated for 1-s "
              "slices;\nother slice lengths shift the feature scales, which "
              "is exactly the\nsensitivity this ablation demonstrates.\n");
  return 0;
}
