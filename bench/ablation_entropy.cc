// Ablation: what would payload visibility buy? (paper §II / SSD-Insider++)
//
// The paper chooses header-only behavioral features because content
// inspection is costly inside a drive and entropy — the classic content
// signal — cannot tell ciphertext from compression. This bench makes that
// argument quantitative with the EntropyTracker module: synthetic payload
// models for each workload class, their per-slice write entropy, and the
// separability (or not) against a ransomware's ciphertext.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/entropy.h"

namespace {

using namespace insider;

std::vector<std::byte> Ciphertext(Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.Below(256));
  return out;
}

std::vector<std::byte> OfficeDocument(Rng& rng, std::size_t n) {
  // Text-like: a small alphabet with a skewed distribution.
  static const char kAlpha[] = " etaoinshrdlucmfwypvbgkqjxz.,\n";
  std::vector<std::byte> out(n);
  for (auto& b : out) {
    std::size_t idx = rng.Below(rng.Below(sizeof(kAlpha) - 1) + 1);
    b = static_cast<std::byte>(kAlpha[idx]);
  }
  return out;
}

std::vector<std::byte> CompressedArchive(Rng& rng, std::size_t n) {
  // Deflate output is nearly uniform with light framing structure.
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (i % 512 < 4) ? std::byte{0x78}
                           : static_cast<std::byte>(rng.Below(256));
  }
  return out;
}

std::vector<std::byte> DatabasePage(Rng& rng, std::size_t n) {
  // Records: repetitive structure with embedded integers/strings.
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 64 < 40) {
      out[i] = static_cast<std::byte>('A' + (i % 16));
    } else {
      out[i] = static_cast<std::byte>(rng.Below(64));
    }
  }
  return out;
}

std::vector<std::byte> MediaStream(Rng& rng, std::size_t n) {
  // Already-encoded video: close to uniform.
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.Below(250));
  return out;
}

double MeanSliceEntropy(
    const std::function<std::vector<std::byte>(Rng&, std::size_t)>& gen,
    std::uint64_t seed) {
  Rng rng(seed);
  core::EntropyTracker tracker(Seconds(1));
  SimTime t = 0;
  for (int slice = 0; slice < 20; ++slice) {
    for (int w = 0; w < 16; ++w) {
      tracker.OnWrite(t, gen(rng, 4096));
      t += Milliseconds(50);
    }
  }
  tracker.AdvanceTo(t + Seconds(1));
  return tracker.RecentMean(20);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: per-slice write-payload entropy by workload class");
  struct Row {
    const char* name;
    std::function<std::vector<std::byte>(Rng&, std::size_t)> gen;
  };
  std::vector<Row> rows = {
      {"ransomware (ciphertext)", Ciphertext},
      {"compression (archive)", CompressedArchive},
      {"video encode (media)", MediaStream},
      {"office documents (text)", OfficeDocument},
      {"database pages", DatabasePage},
  };
  std::printf("%-28s %18s\n", "write content", "entropy (bits/B)");
  double cipher = 0, archive = 0, text = 0;
  for (const Row& r : rows) {
    double e = MeanSliceEntropy(r.gen, 99);
    std::printf("%-28s %18.3f\n", r.name, e);
    if (r.name[0] == 'r') cipher = e;
    if (r.name[0] == 'c' && r.name[1] == 'o') archive = e;
    if (r.name[0] == 'o') text = e;
  }
  std::printf(
      "\nEntropy separates ciphertext from documents by %.1f bits/B, but\n"
      "from compression by only %.2f bits/B — the paper's reason to build\n"
      "the detector on overwriting behavior instead of content, and why\n"
      "the follow-up (SSD-Insider++) uses entropy only as a secondary\n"
      "signal.\n",
      cipher - text, cipher - archive);
  return 0;
}
