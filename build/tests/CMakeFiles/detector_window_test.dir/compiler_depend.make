# Empty compiler generated dependencies file for detector_window_test.
# This may be replaced when dependencies are built.
