file(REMOVE_RECURSE
  "CMakeFiles/detector_window_test.dir/detector_window_test.cc.o"
  "CMakeFiles/detector_window_test.dir/detector_window_test.cc.o.d"
  "detector_window_test"
  "detector_window_test.pdb"
  "detector_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
