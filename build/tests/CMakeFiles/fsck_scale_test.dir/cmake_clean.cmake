file(REMOVE_RECURSE
  "CMakeFiles/fsck_scale_test.dir/fsck_scale_test.cc.o"
  "CMakeFiles/fsck_scale_test.dir/fsck_scale_test.cc.o.d"
  "fsck_scale_test"
  "fsck_scale_test.pdb"
  "fsck_scale_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsck_scale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
