# Empty compiler generated dependencies file for fsck_scale_test.
# This may be replaced when dependencies are built.
