# Empty dependencies file for fs_lazy_test.
# This may be replaced when dependencies are built.
