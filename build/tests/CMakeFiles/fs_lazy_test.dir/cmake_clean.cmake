file(REMOVE_RECURSE
  "CMakeFiles/fs_lazy_test.dir/fs_lazy_test.cc.o"
  "CMakeFiles/fs_lazy_test.dir/fs_lazy_test.cc.o.d"
  "fs_lazy_test"
  "fs_lazy_test.pdb"
  "fs_lazy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_lazy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
