file(REMOVE_RECURSE
  "CMakeFiles/nand_timing_test.dir/nand_timing_test.cc.o"
  "CMakeFiles/nand_timing_test.dir/nand_timing_test.cc.o.d"
  "nand_timing_test"
  "nand_timing_test.pdb"
  "nand_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
