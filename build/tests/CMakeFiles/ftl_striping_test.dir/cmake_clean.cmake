file(REMOVE_RECURSE
  "CMakeFiles/ftl_striping_test.dir/ftl_striping_test.cc.o"
  "CMakeFiles/ftl_striping_test.dir/ftl_striping_test.cc.o.d"
  "ftl_striping_test"
  "ftl_striping_test.pdb"
  "ftl_striping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_striping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
