# Empty dependencies file for ftl_striping_test.
# This may be replaced when dependencies are built.
