# Empty dependencies file for feature_signature_test.
# This may be replaced when dependencies are built.
