file(REMOVE_RECURSE
  "CMakeFiles/feature_signature_test.dir/feature_signature_test.cc.o"
  "CMakeFiles/feature_signature_test.dir/feature_signature_test.cc.o.d"
  "feature_signature_test"
  "feature_signature_test.pdb"
  "feature_signature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_signature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
