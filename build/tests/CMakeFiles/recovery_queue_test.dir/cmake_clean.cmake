file(REMOVE_RECURSE
  "CMakeFiles/recovery_queue_test.dir/recovery_queue_test.cc.o"
  "CMakeFiles/recovery_queue_test.dir/recovery_queue_test.cc.o.d"
  "recovery_queue_test"
  "recovery_queue_test.pdb"
  "recovery_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
