file(REMOVE_RECURSE
  "CMakeFiles/media_errors_test.dir/media_errors_test.cc.o"
  "CMakeFiles/media_errors_test.dir/media_errors_test.cc.o.d"
  "media_errors_test"
  "media_errors_test.pdb"
  "media_errors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
