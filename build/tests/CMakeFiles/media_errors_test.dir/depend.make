# Empty dependencies file for media_errors_test.
# This may be replaced when dependencies are built.
