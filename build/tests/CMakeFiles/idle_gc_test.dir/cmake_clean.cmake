file(REMOVE_RECURSE
  "CMakeFiles/idle_gc_test.dir/idle_gc_test.cc.o"
  "CMakeFiles/idle_gc_test.dir/idle_gc_test.cc.o.d"
  "idle_gc_test"
  "idle_gc_test.pdb"
  "idle_gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idle_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
