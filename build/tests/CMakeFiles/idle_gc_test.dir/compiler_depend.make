# Empty compiler generated dependencies file for idle_gc_test.
# This may be replaced when dependencies are built.
