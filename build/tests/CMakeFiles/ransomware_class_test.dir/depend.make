# Empty dependencies file for ransomware_class_test.
# This may be replaced when dependencies are built.
