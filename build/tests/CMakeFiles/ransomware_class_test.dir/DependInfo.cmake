
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ransomware_class_test.cc" "tests/CMakeFiles/ransomware_class_test.dir/ransomware_class_test.cc.o" "gcc" "tests/CMakeFiles/ransomware_class_test.dir/ransomware_class_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/insider_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/insider_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/insider_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/insider_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/insider_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/insider_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/insider_host.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
