file(REMOVE_RECURSE
  "CMakeFiles/ransomware_class_test.dir/ransomware_class_test.cc.o"
  "CMakeFiles/ransomware_class_test.dir/ransomware_class_test.cc.o.d"
  "ransomware_class_test"
  "ransomware_class_test.pdb"
  "ransomware_class_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ransomware_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
