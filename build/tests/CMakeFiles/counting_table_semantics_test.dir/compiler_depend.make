# Empty compiler generated dependencies file for counting_table_semantics_test.
# This may be replaced when dependencies are built.
