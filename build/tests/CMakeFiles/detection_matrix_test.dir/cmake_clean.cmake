file(REMOVE_RECURSE
  "CMakeFiles/detection_matrix_test.dir/detection_matrix_test.cc.o"
  "CMakeFiles/detection_matrix_test.dir/detection_matrix_test.cc.o.d"
  "detection_matrix_test"
  "detection_matrix_test.pdb"
  "detection_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
