# Empty dependencies file for detection_matrix_test.
# This may be replaced when dependencies are built.
