# Empty compiler generated dependencies file for rollback_property_test.
# This may be replaced when dependencies are built.
