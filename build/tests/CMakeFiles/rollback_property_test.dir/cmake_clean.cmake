file(REMOVE_RECURSE
  "CMakeFiles/rollback_property_test.dir/rollback_property_test.cc.o"
  "CMakeFiles/rollback_property_test.dir/rollback_property_test.cc.o.d"
  "rollback_property_test"
  "rollback_property_test.pdb"
  "rollback_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
