# Empty dependencies file for ssd_flow_test.
# This may be replaced when dependencies are built.
