file(REMOVE_RECURSE
  "CMakeFiles/ssd_flow_test.dir/ssd_flow_test.cc.o"
  "CMakeFiles/ssd_flow_test.dir/ssd_flow_test.cc.o.d"
  "ssd_flow_test"
  "ssd_flow_test.pdb"
  "ssd_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
