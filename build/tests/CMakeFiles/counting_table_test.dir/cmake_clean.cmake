file(REMOVE_RECURSE
  "CMakeFiles/counting_table_test.dir/counting_table_test.cc.o"
  "CMakeFiles/counting_table_test.dir/counting_table_test.cc.o.d"
  "counting_table_test"
  "counting_table_test.pdb"
  "counting_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
