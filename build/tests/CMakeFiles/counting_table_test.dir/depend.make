# Empty dependencies file for counting_table_test.
# This may be replaced when dependencies are built.
