file(REMOVE_RECURSE
  "CMakeFiles/insider_common.dir/log.cc.o"
  "CMakeFiles/insider_common.dir/log.cc.o.d"
  "CMakeFiles/insider_common.dir/rng.cc.o"
  "CMakeFiles/insider_common.dir/rng.cc.o.d"
  "CMakeFiles/insider_common.dir/stats.cc.o"
  "CMakeFiles/insider_common.dir/stats.cc.o.d"
  "libinsider_common.a"
  "libinsider_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insider_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
