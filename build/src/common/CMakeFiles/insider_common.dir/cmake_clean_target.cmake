file(REMOVE_RECURSE
  "libinsider_common.a"
)
