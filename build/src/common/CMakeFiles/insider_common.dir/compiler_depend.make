# Empty compiler generated dependencies file for insider_common.
# This may be replaced when dependencies are built.
