file(REMOVE_RECURSE
  "libinsider_nand.a"
)
