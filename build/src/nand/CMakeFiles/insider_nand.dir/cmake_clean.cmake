file(REMOVE_RECURSE
  "CMakeFiles/insider_nand.dir/block.cc.o"
  "CMakeFiles/insider_nand.dir/block.cc.o.d"
  "CMakeFiles/insider_nand.dir/chip.cc.o"
  "CMakeFiles/insider_nand.dir/chip.cc.o.d"
  "CMakeFiles/insider_nand.dir/flash_array.cc.o"
  "CMakeFiles/insider_nand.dir/flash_array.cc.o.d"
  "libinsider_nand.a"
  "libinsider_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insider_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
