# Empty dependencies file for insider_nand.
# This may be replaced when dependencies are built.
