file(REMOVE_RECURSE
  "libinsider_fs.a"
)
