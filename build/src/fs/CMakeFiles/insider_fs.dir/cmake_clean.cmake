file(REMOVE_RECURSE
  "CMakeFiles/insider_fs.dir/file_system.cc.o"
  "CMakeFiles/insider_fs.dir/file_system.cc.o.d"
  "CMakeFiles/insider_fs.dir/fsck.cc.o"
  "CMakeFiles/insider_fs.dir/fsck.cc.o.d"
  "CMakeFiles/insider_fs.dir/layout.cc.o"
  "CMakeFiles/insider_fs.dir/layout.cc.o.d"
  "libinsider_fs.a"
  "libinsider_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insider_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
