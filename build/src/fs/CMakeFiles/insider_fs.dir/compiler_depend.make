# Empty compiler generated dependencies file for insider_fs.
# This may be replaced when dependencies are built.
