
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/page_ftl.cc" "src/ftl/CMakeFiles/insider_ftl.dir/page_ftl.cc.o" "gcc" "src/ftl/CMakeFiles/insider_ftl.dir/page_ftl.cc.o.d"
  "/root/repo/src/ftl/recovery_queue.cc" "src/ftl/CMakeFiles/insider_ftl.dir/recovery_queue.cc.o" "gcc" "src/ftl/CMakeFiles/insider_ftl.dir/recovery_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/insider_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/insider_nand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
