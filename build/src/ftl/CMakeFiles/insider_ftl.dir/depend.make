# Empty dependencies file for insider_ftl.
# This may be replaced when dependencies are built.
