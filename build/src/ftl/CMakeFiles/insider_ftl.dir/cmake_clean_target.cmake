file(REMOVE_RECURSE
  "libinsider_ftl.a"
)
