file(REMOVE_RECURSE
  "CMakeFiles/insider_ftl.dir/page_ftl.cc.o"
  "CMakeFiles/insider_ftl.dir/page_ftl.cc.o.d"
  "CMakeFiles/insider_ftl.dir/recovery_queue.cc.o"
  "CMakeFiles/insider_ftl.dir/recovery_queue.cc.o.d"
  "libinsider_ftl.a"
  "libinsider_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insider_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
