file(REMOVE_RECURSE
  "libinsider_core.a"
)
