
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/counting_table.cc" "src/core/CMakeFiles/insider_core.dir/counting_table.cc.o" "gcc" "src/core/CMakeFiles/insider_core.dir/counting_table.cc.o.d"
  "/root/repo/src/core/decision_tree.cc" "src/core/CMakeFiles/insider_core.dir/decision_tree.cc.o" "gcc" "src/core/CMakeFiles/insider_core.dir/decision_tree.cc.o.d"
  "/root/repo/src/core/detector.cc" "src/core/CMakeFiles/insider_core.dir/detector.cc.o" "gcc" "src/core/CMakeFiles/insider_core.dir/detector.cc.o.d"
  "/root/repo/src/core/entropy.cc" "src/core/CMakeFiles/insider_core.dir/entropy.cc.o" "gcc" "src/core/CMakeFiles/insider_core.dir/entropy.cc.o.d"
  "/root/repo/src/core/id3.cc" "src/core/CMakeFiles/insider_core.dir/id3.cc.o" "gcc" "src/core/CMakeFiles/insider_core.dir/id3.cc.o.d"
  "/root/repo/src/core/pretrained.cc" "src/core/CMakeFiles/insider_core.dir/pretrained.cc.o" "gcc" "src/core/CMakeFiles/insider_core.dir/pretrained.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/insider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
