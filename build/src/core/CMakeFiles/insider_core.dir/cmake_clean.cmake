file(REMOVE_RECURSE
  "CMakeFiles/insider_core.dir/counting_table.cc.o"
  "CMakeFiles/insider_core.dir/counting_table.cc.o.d"
  "CMakeFiles/insider_core.dir/decision_tree.cc.o"
  "CMakeFiles/insider_core.dir/decision_tree.cc.o.d"
  "CMakeFiles/insider_core.dir/detector.cc.o"
  "CMakeFiles/insider_core.dir/detector.cc.o.d"
  "CMakeFiles/insider_core.dir/entropy.cc.o"
  "CMakeFiles/insider_core.dir/entropy.cc.o.d"
  "CMakeFiles/insider_core.dir/id3.cc.o"
  "CMakeFiles/insider_core.dir/id3.cc.o.d"
  "CMakeFiles/insider_core.dir/pretrained.cc.o"
  "CMakeFiles/insider_core.dir/pretrained.cc.o.d"
  "libinsider_core.a"
  "libinsider_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insider_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
