# Empty dependencies file for insider_core.
# This may be replaced when dependencies are built.
