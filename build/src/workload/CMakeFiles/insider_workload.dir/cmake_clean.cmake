file(REMOVE_RECURSE
  "CMakeFiles/insider_workload.dir/apps.cc.o"
  "CMakeFiles/insider_workload.dir/apps.cc.o.d"
  "CMakeFiles/insider_workload.dir/file_set.cc.o"
  "CMakeFiles/insider_workload.dir/file_set.cc.o.d"
  "CMakeFiles/insider_workload.dir/mixer.cc.o"
  "CMakeFiles/insider_workload.dir/mixer.cc.o.d"
  "CMakeFiles/insider_workload.dir/ransomware.cc.o"
  "CMakeFiles/insider_workload.dir/ransomware.cc.o.d"
  "CMakeFiles/insider_workload.dir/trace.cc.o"
  "CMakeFiles/insider_workload.dir/trace.cc.o.d"
  "libinsider_workload.a"
  "libinsider_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insider_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
