
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/apps.cc" "src/workload/CMakeFiles/insider_workload.dir/apps.cc.o" "gcc" "src/workload/CMakeFiles/insider_workload.dir/apps.cc.o.d"
  "/root/repo/src/workload/file_set.cc" "src/workload/CMakeFiles/insider_workload.dir/file_set.cc.o" "gcc" "src/workload/CMakeFiles/insider_workload.dir/file_set.cc.o.d"
  "/root/repo/src/workload/mixer.cc" "src/workload/CMakeFiles/insider_workload.dir/mixer.cc.o" "gcc" "src/workload/CMakeFiles/insider_workload.dir/mixer.cc.o.d"
  "/root/repo/src/workload/ransomware.cc" "src/workload/CMakeFiles/insider_workload.dir/ransomware.cc.o" "gcc" "src/workload/CMakeFiles/insider_workload.dir/ransomware.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/insider_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/insider_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/insider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
