# Empty compiler generated dependencies file for insider_workload.
# This may be replaced when dependencies are built.
