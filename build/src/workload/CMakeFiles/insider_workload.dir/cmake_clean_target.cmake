file(REMOVE_RECURSE
  "libinsider_workload.a"
)
