# Empty compiler generated dependencies file for insider_host.
# This may be replaced when dependencies are built.
