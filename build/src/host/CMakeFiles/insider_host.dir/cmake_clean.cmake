file(REMOVE_RECURSE
  "CMakeFiles/insider_host.dir/dram.cc.o"
  "CMakeFiles/insider_host.dir/dram.cc.o.d"
  "CMakeFiles/insider_host.dir/experiment.cc.o"
  "CMakeFiles/insider_host.dir/experiment.cc.o.d"
  "CMakeFiles/insider_host.dir/scenario.cc.o"
  "CMakeFiles/insider_host.dir/scenario.cc.o.d"
  "CMakeFiles/insider_host.dir/ssd.cc.o"
  "CMakeFiles/insider_host.dir/ssd.cc.o.d"
  "CMakeFiles/insider_host.dir/train.cc.o"
  "CMakeFiles/insider_host.dir/train.cc.o.d"
  "libinsider_host.a"
  "libinsider_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insider_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
