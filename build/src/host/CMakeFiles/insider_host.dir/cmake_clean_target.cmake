file(REMOVE_RECURSE
  "libinsider_host.a"
)
