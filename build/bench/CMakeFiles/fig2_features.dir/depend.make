# Empty dependencies file for fig2_features.
# This may be replaced when dependencies are built.
