file(REMOVE_RECURSE
  "CMakeFiles/fig2_features.dir/fig2_features.cc.o"
  "CMakeFiles/fig2_features.dir/fig2_features.cc.o.d"
  "fig2_features"
  "fig2_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
