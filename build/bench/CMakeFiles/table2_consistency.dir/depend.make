# Empty dependencies file for table2_consistency.
# This may be replaced when dependencies are built.
