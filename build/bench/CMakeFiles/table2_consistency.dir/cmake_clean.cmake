file(REMOVE_RECURSE
  "CMakeFiles/table2_consistency.dir/table2_consistency.cc.o"
  "CMakeFiles/table2_consistency.dir/table2_consistency.cc.o.d"
  "table2_consistency"
  "table2_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
