# Empty compiler generated dependencies file for table3_dram.
# This may be replaced when dependencies are built.
