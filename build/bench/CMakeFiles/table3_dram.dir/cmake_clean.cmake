file(REMOVE_RECURSE
  "CMakeFiles/table3_dram.dir/table3_dram.cc.o"
  "CMakeFiles/table3_dram.dir/table3_dram.cc.o.d"
  "table3_dram"
  "table3_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
