# Empty dependencies file for fig9_gc_cost.
# This may be replaced when dependencies are built.
