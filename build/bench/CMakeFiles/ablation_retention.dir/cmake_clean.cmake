file(REMOVE_RECURSE
  "CMakeFiles/ablation_retention.dir/ablation_retention.cc.o"
  "CMakeFiles/ablation_retention.dir/ablation_retention.cc.o.d"
  "ablation_retention"
  "ablation_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
