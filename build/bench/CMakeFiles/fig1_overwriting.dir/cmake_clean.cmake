file(REMOVE_RECURSE
  "CMakeFiles/fig1_overwriting.dir/fig1_overwriting.cc.o"
  "CMakeFiles/fig1_overwriting.dir/fig1_overwriting.cc.o.d"
  "fig1_overwriting"
  "fig1_overwriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_overwriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
