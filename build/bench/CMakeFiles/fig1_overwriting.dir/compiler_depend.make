# Empty compiler generated dependencies file for fig1_overwriting.
# This may be replaced when dependencies are built.
