# Empty compiler generated dependencies file for fig8_io_overhead.
# This may be replaced when dependencies are built.
