# Empty compiler generated dependencies file for filesystem_recovery.
# This may be replaced when dependencies are built.
