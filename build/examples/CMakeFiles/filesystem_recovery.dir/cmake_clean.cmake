file(REMOVE_RECURSE
  "CMakeFiles/filesystem_recovery.dir/filesystem_recovery.cpp.o"
  "CMakeFiles/filesystem_recovery.dir/filesystem_recovery.cpp.o.d"
  "filesystem_recovery"
  "filesystem_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesystem_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
