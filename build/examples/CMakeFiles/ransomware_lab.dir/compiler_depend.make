# Empty compiler generated dependencies file for ransomware_lab.
# This may be replaced when dependencies are built.
