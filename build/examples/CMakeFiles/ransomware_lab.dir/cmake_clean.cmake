file(REMOVE_RECURSE
  "CMakeFiles/ransomware_lab.dir/ransomware_lab.cpp.o"
  "CMakeFiles/ransomware_lab.dir/ransomware_lab.cpp.o.d"
  "ransomware_lab"
  "ransomware_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ransomware_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
