# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.ransomware_lab "/root/repo/build/examples/ransomware_lab" "WebSurfing")
set_tests_properties(example.ransomware_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.filesystem_recovery "/root/repo/build/examples/filesystem_recovery")
set_tests_properties(example.filesystem_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.train_and_export "/root/repo/build/examples/train_and_export" "/root/repo/build/examples/smoke.tree")
set_tests_properties(example.train_and_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.trace_tool_gen "/root/repo/build/examples/trace_tool" "gen" "family" "Mole" "10" "3" "/root/repo/build/examples/smoke.trace")
set_tests_properties(example.trace_tool_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.trace_tool_detect "/root/repo/build/examples/trace_tool" "detect" "/root/repo/build/examples/smoke.trace")
set_tests_properties(example.trace_tool_detect PROPERTIES  DEPENDS "example.trace_tool_gen" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
